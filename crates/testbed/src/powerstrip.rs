//! The power strip: physical topology plus the firmware/medium glue.
//!
//! The paper's setup: "N saturated PLC stations transmitting UDP traffic
//! to the same destination station called D. At each experiment, only the
//! N stations are activated and plugged on the power-strip … the channel
//! conditions are ideal". [`PowerStrip`] builds exactly that — `N`
//! emulated devices plus `D` on one contention domain — and runs the
//! `plc-sim` multi-class engine underneath:
//!
//! * each device contributes a **data station** at CA1 (saturated UDP, the
//!   paper's default priority) — except `D`, which only receives;
//! * each device (including `D`) optionally contributes a **management
//!   station** at CA2 with low-rate Poisson arrivals, reproducing the
//!   MMEs the paper observes "are transmitted with CA2 or CA3 priorities";
//! * a firmware trace sink feeds the engine's wire events into the
//!   devices: every SACK updates the transmitter's acked/collided
//!   counters (collided MPDUs are acknowledged-with-errors), and every
//!   SoF is offered to all devices for sniffer capture.

use crate::bus::{DeviceTable, MgmtBus};
use crate::device::Device;
use parking_lot::Mutex;
use plc_core::addr::{MacAddr, Tei};
use plc_core::config::CsmaConfig;
use plc_core::priority::Priority;
use plc_core::timing::MacTiming;
use plc_core::units::Microseconds;
use plc_mac::Backoff1901;
use plc_sim::bursting::BurstPolicy;
use plc_sim::metrics::Metrics;
use plc_sim::multiclass::{ClassStationSpec, MultiClassConfig, MultiClassEngine};
use plc_sim::trace::{TraceEvent, TraceSink};
use plc_sim::traffic::TrafficModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of one testbed instance.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of transmitting stations `N` (the destination `D` is extra).
    pub n_stations: usize,
    /// Test duration (the paper uses 240 s tests).
    pub duration: Microseconds,
    /// Master seed.
    pub seed: u64,
    /// Burst policy; the paper's devices used 2-MPDU bursts.
    pub burst: BurstPolicy,
    /// Per-device management-message rate (frames/µs) at CA2; 0 disables
    /// management traffic.
    pub mme_rate_per_us: f64,
    /// Channel timing.
    pub timing: MacTiming,
    /// Deterministic fault plan: MME loss/delay on the management bus,
    /// device brownouts, counter wrap, impulse noise. `None` is the ideal
    /// testbed of the paper.
    pub faults: Option<plc_faults::FaultPlan>,
}

impl Default for TestbedConfig {
    /// Paper-like defaults: 240 s, 2-MPDU bursts, light management
    /// traffic (≈ 2 MMEs per second per device).
    fn default() -> Self {
        TestbedConfig {
            n_stations: 2,
            duration: Microseconds::from_secs(240.0),
            seed: 0,
            burst: BurstPolicy::INT6300,
            mme_rate_per_us: 2e-6,
            timing: MacTiming::paper_default(),
            faults: None,
        }
    }
}

/// The emulated power strip.
pub struct PowerStrip {
    cfg: TestbedConfig,
    devices: DeviceTable,
    host: MacAddr,
    registry: Option<plc_obs::Registry>,
    /// Shared MME fault injector, built from the config's plan; all buses
    /// handed out by [`bus`](PowerStrip::bus) consume one fate stream.
    mme_faults: Option<crate::bus::SharedMmeFaults>,
}

/// The measurement host's MAC address (the PC the tools run on).
pub const HOST_MAC: MacAddr = MacAddr([0x02, 0xB0, 0x57, 0x00, 0x00, 0x01]);

impl PowerStrip {
    /// Plug `cfg.n_stations` stations and the destination `D` into the
    /// strip. Device `i` has `MacAddr::station(i)` / `Tei::station(i)`;
    /// `D` is the last device.
    pub fn new(cfg: TestbedConfig) -> Self {
        assert!(
            cfg.n_stations >= 1,
            "need at least one transmitting station"
        );
        let mut devices: Vec<Device> = (0..=cfg.n_stations as u32)
            .map(|i| Device::new(MacAddr::station(i), Tei::station(i)))
            .collect();
        let mme_faults = cfg.faults.as_ref().map(|plan| {
            for d in devices.iter_mut() {
                d.set_counter_wrap(plan.counter_wrap);
            }
            Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(plan)))
        });
        PowerStrip {
            cfg,
            devices: Arc::new(Mutex::new(devices)),
            host: HOST_MAC,
            registry: None,
            mme_faults,
        }
    }

    /// Mirror every device's firmware counters into `registry`
    /// (`testbed.dev<TEI>.tx_acked` / `.tx_collided`) and instrument the
    /// underlying engine's round/PRS timers on the next [`run_test`].
    /// Observability only — results are identical with or without it.
    /// Fails (leaving the strip uninstrumented) if any metric name is
    /// already registered under a different kind.
    ///
    /// [`run_test`]: PowerStrip::run_test
    pub fn attach_registry(&mut self, registry: &plc_obs::Registry) -> plc_core::error::Result<()> {
        // Pre-register the engine timers eagerly so run_test's instrument
        // call cannot fail later: any name clash surfaces here instead.
        registry.try_timer("multiclass.round")?;
        registry.try_timer("multiclass.prs")?;
        for d in self.devices.lock().iter_mut() {
            d.attach_registry(registry)?;
        }
        if let Some(f) = &self.mme_faults {
            f.lock().attach_registry(registry)?;
        }
        self.registry = Some(registry.clone());
        Ok(())
    }

    /// The management bus the tools plug into (fault-injected when the
    /// config carries a plan).
    pub fn bus(&self) -> MgmtBus {
        let bus = MgmtBus::new(self.devices.clone(), self.host);
        match &self.mme_faults {
            Some(f) => bus.with_faults(f.clone()),
            None => bus,
        }
    }

    /// A bus that bypasses fault injection (assertions and ground-truth
    /// reads in tests).
    pub fn clean_bus(&self) -> MgmtBus {
        MgmtBus::new(self.devices.clone(), self.host)
    }

    /// The configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    /// MAC of transmitting station `i`.
    pub fn station_mac(&self, i: usize) -> MacAddr {
        assert!(i < self.cfg.n_stations);
        MacAddr::station(i as u32)
    }

    /// MAC of the destination `D`.
    pub fn destination_mac(&self) -> MacAddr {
        MacAddr::station(self.cfg.n_stations as u32)
    }

    /// TEI of the destination `D`.
    pub fn destination_tei(&self) -> Tei {
        Tei::station(self.cfg.n_stations as u32)
    }

    /// Run one test of the configured duration. Returns the engine's
    /// ground-truth metrics (the measured counters live in the devices and
    /// are read through the tools, as on hardware).
    pub fn run_test(&mut self) -> Metrics {
        self.run_test_with_breaks(&[], |_| Ok(()))
            .expect("a break-free test cannot fail")
    }

    /// [`run_test`](PowerStrip::run_test), pausing the engine at each time
    /// in `breaks` to invoke `on_break(index)` — the hook the experiment
    /// layer uses to read counters mid-test (checkpointed reads are what
    /// make reset/wrap stitching possible). Device brownouts scheduled in
    /// the fault plan are applied at their times as well; a reset
    /// coinciding with a break is applied first, so the break observes the
    /// post-reset counters.
    ///
    /// The engine performs the exact same sequence of rounds as an
    /// unsegmented run — pausing is observationally free — so for an empty
    /// plan and no breaks this is byte-identical to [`run_test`].
    pub fn run_test_with_breaks(
        &mut self,
        breaks: &[Microseconds],
        mut on_break: impl FnMut(usize) -> plc_core::error::Result<()>,
    ) -> plc_core::error::Result<Metrics> {
        let n = self.cfg.n_stations;
        let dst = self.destination_tei();
        let mut proc_rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0x9E37_79B9_7F4A_7C15);

        let mut stations: Vec<ClassStationSpec<Backoff1901>> = Vec::new();
        // Data stations: CA1, saturated, one per transmitting device.
        for i in 0..n {
            let mut s = ClassStationSpec::new(
                Backoff1901::new(CsmaConfig::ieee1901_ca01(), &mut proc_rng),
                Priority::CA1,
                TrafficModel::Saturated,
            );
            s.tei = Some(Tei::station(i as u32));
            s.dst = Some(dst);
            stations.push(s);
        }
        // Management stations: CA2, light Poisson, one per device incl. D.
        if self.cfg.mme_rate_per_us > 0.0 {
            for i in 0..=n {
                let mut s = ClassStationSpec::new(
                    Backoff1901::new(CsmaConfig::ieee1901_ca23(), &mut proc_rng),
                    Priority::CA2,
                    TrafficModel::Poisson {
                        rate_per_us: self.cfg.mme_rate_per_us,
                        queue_cap: 16,
                    },
                );
                s.tei = Some(Tei::station(i as u32));
                // MMEs from stations go to D; D's own MMEs go to station 0.
                s.dst = Some(if i == n { Tei::station(0) } else { dst });
                s.num_pbs = 1; // MMEs are single-PB frames
                stations.push(s);
            }
        }

        let engine_cfg = MultiClassConfig {
            timing: self.cfg.timing,
            horizon: self.cfg.duration,
            burst: self.cfg.burst,
            emit_wire_events: true,
            fast_forward: true,
        };
        let mut engine = MultiClassEngine::new(engine_cfg, stations, self.cfg.seed);
        if let Some(registry) = &self.registry {
            // Cannot fail: attach_registry pre-registered both timers with
            // the right kinds, and re-resolving a same-kind name succeeds.
            let _ = engine.instrument(registry);
        }
        let sink = Arc::new(Mutex::new(FirmwareSink::new(self.devices.clone())));
        engine.add_sink(sink);

        // Boundary schedule: fault-plan brownouts merged with the caller's
        // breaks. The stable sort keeps resets ahead of breaks that share
        // a timestamp (resets were pushed first).
        enum Boundary {
            Reset(usize),
            Break(usize),
        }
        let horizon = self.cfg.duration;
        let n_devices = self.devices.lock().len();
        let mut bounds: Vec<(f64, Boundary)> = Vec::new();
        if let Some(plan) = &self.cfg.faults {
            for r in &plan.device_resets {
                if r.at_us < horizon.as_micros() && r.station < n_devices {
                    bounds.push((r.at_us, Boundary::Reset(r.station)));
                }
            }
        }
        for (j, b) in breaks.iter().enumerate() {
            bounds.push((b.as_micros(), Boundary::Break(j)));
        }
        bounds.sort_by(|a, b| a.0.total_cmp(&b.0));

        for (t, boundary) in bounds {
            let target = Microseconds(t.min(horizon.as_micros()));
            while engine.time() <= target {
                engine.round();
            }
            match boundary {
                Boundary::Reset(station) => self.devices.lock()[station].reset_firmware(),
                Boundary::Break(j) => on_break(j)?,
            }
        }
        while engine.time() <= horizon {
            engine.round();
        }
        Ok(engine.metrics().clone())
    }
}

/// Trace sink wiring engine wire events into device firmware state.
struct FirmwareSink {
    devices: DeviceTable,
    /// In-flight MPDU bookkeeping: src TEI → (priority, dst TEI), set by
    /// the SoF, consumed by the matching SACK.
    pending: HashMap<Tei, (Priority, Tei)>,
}

impl FirmwareSink {
    fn new(devices: DeviceTable) -> Self {
        FirmwareSink {
            devices,
            pending: HashMap::new(),
        }
    }
}

impl TraceSink for FirmwareSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Sof { t, sof, .. } => {
                self.pending.insert(sof.src, (sof.priority, sof.dst));
                let mut devices = self.devices.lock();
                for d in devices.iter_mut() {
                    d.sense_sof(t.as_micros(), *sof);
                }
            }
            TraceEvent::Sack { ack, .. } => {
                let Some(&(priority, dst)) = self.pending.get(&ack.to) else {
                    return;
                };
                let collided = ack.indicates_collision();
                let mut devices = self.devices.lock();
                // Peer of the transmit-side counter is the destination MAC.
                let peer_mac = devices
                    .iter()
                    .find(|d| d.tei() == dst)
                    .map(|d| d.mac())
                    .unwrap_or(MacAddr::BROADCAST);
                let src_mac = devices
                    .iter()
                    .find(|d| d.tei() == ack.to)
                    .map(|d| d.mac())
                    .unwrap_or(MacAddr::BROADCAST);
                if let Some(tx_dev) = devices.iter_mut().find(|d| d.tei() == ack.to) {
                    tx_dev.record_tx_ack(peer_mac, priority, collided);
                }
                if let Some(rx_dev) = devices.iter_mut().find(|d| d.tei() == dst) {
                    rx_dev.record_rx(src_mac, priority, collided);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tools::{AmpStat, Faifa};
    use plc_core::mme::Direction;

    fn quick_cfg(n: usize, seed: u64) -> TestbedConfig {
        TestbedConfig {
            n_stations: n,
            duration: Microseconds::from_secs(5.0),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn counters_match_engine_ground_truth() {
        let mut strip = PowerStrip::new(quick_cfg(3, 1));
        let metrics = strip.run_test();
        let tool = AmpStat::new(strip.bus());
        let dst = strip.destination_mac();
        let mut sum_acked = 0;
        let mut sum_collided = 0;
        for i in 0..3 {
            let s = tool
                .get(strip.station_mac(i), dst, Priority::CA1, Direction::Tx)
                .unwrap();
            // Engine station i is the data station of device i.
            let gt = &metrics.per_station[i];
            assert_eq!(s.acked, gt.mpdus_acked(), "station {i} acked");
            assert_eq!(s.collided, gt.mpdus_collided, "station {i} collided");
            sum_acked += s.acked;
            sum_collided += s.collided;
        }
        assert!(sum_acked > 0);
        assert!(sum_collided > 0, "3 saturated stations must collide in 5 s");
    }

    #[test]
    fn registry_mirror_agrees_with_ampstat() {
        // The per-device mirror counters aggregate across priorities, so
        // disable MME traffic to compare against the CA1-only ampstat view.
        let mut cfg = quick_cfg(3, 1);
        cfg.mme_rate_per_us = 0.0;
        let mut strip = PowerStrip::new(cfg);
        let registry = plc_obs::Registry::new();
        strip.attach_registry(&registry).unwrap();
        strip.run_test();
        let tool = AmpStat::new(strip.bus());
        let dst = strip.destination_mac();
        let snap = registry.snapshot();
        for i in 0..3u32 {
            let s = tool
                .get(
                    strip.station_mac(i as usize),
                    dst,
                    Priority::CA1,
                    Direction::Tx,
                )
                .unwrap();
            // Device i carries Tei::station(i) == i + 1.
            let tei = i + 1;
            assert_eq!(
                snap.counter(&format!("testbed.dev{tei}.tx_acked")),
                Some(s.acked),
                "device {i} acked mirror"
            );
            assert_eq!(
                snap.counter(&format!("testbed.dev{tei}.tx_collided")),
                Some(s.collided),
                "device {i} collided mirror"
            );
        }
        // The engine's round timer was instrumented through the same registry.
        assert!(snap
            .timers
            .iter()
            .any(|t| t.name == "multiclass.round" && t.count > 0));
    }

    #[test]
    fn bursts_mean_two_mpdus_per_win() {
        let mut strip = PowerStrip::new(quick_cfg(1, 2));
        let metrics = strip.run_test();
        // INT6300 burst policy: every saturated win carries 2 MPDUs.
        assert_eq!(
            metrics.per_station[0].mpdus_ok,
            2 * metrics.per_station[0].successes
        );
    }

    #[test]
    fn rx_counters_land_on_destination() {
        let mut strip = PowerStrip::new(quick_cfg(2, 3));
        strip.run_test();
        let tool = AmpStat::new(strip.bus());
        let dst = strip.destination_mac();
        let rx = tool
            .get(dst, strip.station_mac(0), Priority::CA1, Direction::Rx)
            .unwrap();
        assert!(
            rx.acked > 0,
            "D must have receive-side counters for station 0"
        );
    }

    #[test]
    fn sniffer_captures_both_data_and_mme_priorities() {
        let mut strip = PowerStrip::new(quick_cfg(2, 4));
        let faifa = Faifa::new(strip.bus());
        faifa.set_sniffer(strip.destination_mac(), true).unwrap();
        strip.run_test();
        let caps = faifa.collect(strip.destination_mac()).unwrap();
        assert!(!caps.is_empty());
        let data = caps
            .iter()
            .filter(|c| c.sof.priority == Priority::CA1)
            .count();
        let mme = caps
            .iter()
            .filter(|c| c.sof.priority == Priority::CA2)
            .count();
        assert!(data > 0, "UDP data at CA1 must be captured");
        assert!(mme > 0, "management traffic at CA2 must be captured");
        assert!(data > mme, "saturated data dwarfs light management traffic");
        // Timestamps are non-decreasing.
        assert!(caps
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn no_mme_traffic_when_disabled() {
        let mut cfg = quick_cfg(2, 5);
        cfg.mme_rate_per_us = 0.0;
        let mut strip = PowerStrip::new(cfg);
        let faifa = Faifa::new(strip.bus());
        faifa.set_sniffer(strip.destination_mac(), true).unwrap();
        strip.run_test();
        let caps = faifa.collect(strip.destination_mac()).unwrap();
        assert!(caps.iter().all(|c| c.sof.priority == Priority::CA1));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut strip = PowerStrip::new(quick_cfg(2, seed));
            strip.run_test();
            let tool = AmpStat::new(strip.bus());
            let dst = strip.destination_mac();
            (0..2)
                .map(|i| {
                    tool.get(strip.station_mac(i), dst, Priority::CA1, Direction::Tx)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_stations_rejected() {
        PowerStrip::new(TestbedConfig {
            n_stations: 0,
            ..Default::default()
        });
    }

    fn counters(strip: &PowerStrip, n: usize) -> Vec<plc_core::mme::AmpStatCnf> {
        let tool = AmpStat::new(strip.clean_bus());
        let dst = strip.destination_mac();
        (0..n)
            .map(|i| {
                tool.get(strip.station_mac(i), dst, Priority::CA1, Direction::Tx)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn pausing_at_breaks_is_observationally_free() {
        let mut plain = PowerStrip::new(quick_cfg(2, 6));
        let m_plain = plain.run_test();
        let mut paused = PowerStrip::new(quick_cfg(2, 6));
        let breaks = [
            Microseconds::from_secs(1.0),
            Microseconds::from_secs(2.5),
            Microseconds::from_secs(5.0),
        ];
        let mut visits = 0;
        let m_paused = paused
            .run_test_with_breaks(&breaks, |_| {
                visits += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(visits, 3);
        assert_eq!(m_plain, m_paused, "pausing must not perturb the engine");
        assert_eq!(counters(&plain, 2), counters(&paused, 2));
    }

    #[test]
    fn break_errors_propagate() {
        let mut strip = PowerStrip::new(quick_cfg(1, 6));
        let err = strip
            .run_test_with_breaks(&[Microseconds::from_secs(1.0)], |_| {
                Err(plc_core::error::Error::timeout("checkpoint read", 7.0))
            })
            .unwrap_err();
        assert!(err.is_retryable());
    }

    #[test]
    fn scheduled_brownout_clears_counters_mid_test() {
        let mut cfg = quick_cfg(2, 7);
        cfg.faults = Some(
            plc_faults::FaultPlan::builder()
                .seed(7)
                .device_reset_at(0, Microseconds::from_secs(2.5).as_micros())
                .build(),
        );
        let mut strip = PowerStrip::new(cfg);
        strip.run_test();
        let reset_count = strip
            .clean_bus()
            .with_device(strip.station_mac(0), |d| d.reset_count())
            .unwrap();
        assert_eq!(reset_count, 1);
        // Compare against a fault-free control with the same seed: the
        // engine traffic is identical (resets touch only firmware state),
        // so station 0's counters lost their first 2.5 s while station 1's
        // are untouched.
        let mut control = PowerStrip::new(quick_cfg(2, 7));
        control.run_test();
        let faulted = counters(&strip, 2);
        let clean = counters(&control, 2);
        assert!(
            faulted[0].acked < clean[0].acked,
            "reset must lose counts: {} vs {}",
            faulted[0].acked,
            clean[0].acked
        );
        assert_eq!(faulted[1], clean[1], "other station unaffected");
    }

    #[test]
    fn counter_wrap_applies_from_the_plan() {
        let mut cfg = quick_cfg(2, 8);
        cfg.faults = Some(
            plc_faults::FaultPlan::builder()
                .seed(8)
                .counter_wrap(100)
                .build(),
        );
        let mut strip = PowerStrip::new(cfg);
        strip.run_test();
        let mut control = PowerStrip::new(quick_cfg(2, 8));
        control.run_test();
        let wrappedc = counters(&strip, 2);
        let clean = counters(&control, 2);
        assert!(clean[0].acked >= 100, "5 s saturated must exceed 100 MPDUs");
        assert_eq!(wrappedc[0].acked, clean[0].acked % 100);
        assert_eq!(wrappedc[0].collided, clean[0].collided % 100);
    }
}
