//! `plc-tools` — command-line frontends mirroring the paper's tooling.
//!
//! The report's experimental framework is built on two command-line tools
//! (`ampstat` from the Atheros Open PLC Toolkit, and `faifa`) plus the
//! MATLAB `sim_1901` function. This binary packages the same three
//! workflows against the emulated testbed:
//!
//! ```text
//! plc-tools sim N SIM_TIME TC TS FRAME_LENGTH CW.. -- DC..
//!     The paper's simulator invocation, e.g. the Table 3 example:
//!     plc-tools sim 2 5e8 2920.64 2542.64 2050 8 16 32 64 -- 0 1 3 15
//!
//! plc-tools ampstat N [DURATION_S] [SEED]
//!     Run the §3.2 methodology: reset counters on N stations, run a
//!     test, print per-station Ci/Ai and ΣCi/ΣAi.
//!
//! plc-tools faifa N [DURATION_S] [SEED]
//!     Enable sniffer mode at the destination, run a test, print the
//!     captured SoF delimiter fields, burst statistics and MME overhead.
//! ```

use plc_core::mme::Direction;
use plc_core::priority::Priority;
use plc_core::units::Microseconds;
use plc_sim::paper::PaperSim;
use plc_testbed::tools::{AmpStat, Faifa};
use plc_testbed::{group_bursts, mme_overhead, PowerStrip, TestbedConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  plc-tools sim N SIM_TIME TC TS FRAME_LENGTH CW.. -- DC..\n  \
         plc-tools ampstat N [DURATION_S] [SEED]\n  \
         plc-tools faifa N [DURATION_S] [SEED]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {what}: '{s}'");
        std::process::exit(2);
    })
}

fn cmd_sim(args: &[String]) {
    if args.len() < 6 {
        usage();
    }
    let n: usize = parse(&args[0], "N");
    let sim_time: f64 = parse(&args[1], "SIM_TIME");
    let tc: f64 = parse(&args[2], "TC");
    let ts: f64 = parse(&args[3], "TS");
    let frame_length: f64 = parse(&args[4], "FRAME_LENGTH");
    let rest = &args[5..];
    let split = rest
        .iter()
        .position(|a| a == "--")
        .unwrap_or_else(|| usage());
    let cw: Vec<u32> = rest[..split].iter().map(|a| parse(a, "CW")).collect();
    let dc: Vec<u32> = rest[split + 1..].iter().map(|a| parse(a, "DC")).collect();

    let sim = PaperSim {
        n,
        sim_time,
        tc,
        ts,
        frame_length,
        cw,
        dc,
    };
    match sim.run(0) {
        Ok(r) => {
            println!("collision_pr   = {:.6}", r.collision_pr);
            println!("norm_throughput = {:.6}", r.norm_throughput);
            println!(
                "({} successes, {} collided transmissions in {:.3} s simulated)",
                r.succ_transmissions,
                r.collisions,
                r.elapsed / 1e6
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn strip_for(args: &[String]) -> PowerStrip {
    let n: usize = parse(
        args.first().map(String::as_str).unwrap_or_else(|| usage()),
        "N",
    );
    let secs: f64 = args.get(1).map(|a| parse(a, "DURATION_S")).unwrap_or(20.0);
    let seed: u64 = args.get(2).map(|a| parse(a, "SEED")).unwrap_or(1);
    PowerStrip::new(TestbedConfig {
        n_stations: n,
        duration: Microseconds::from_secs(secs),
        seed,
        ..Default::default()
    })
}

fn cmd_ampstat(args: &[String]) {
    let mut strip = strip_for(args);
    let n = strip.config().n_stations;
    let tool = AmpStat::new(strip.bus());
    let dst = strip.destination_mac();
    for i in 0..n {
        tool.reset(strip.station_mac(i), dst, Priority::CA1, Direction::Tx)
            .expect("reset");
    }
    println!(
        "running {:.0} s test, {} station(s) → D = {dst} ...",
        strip.config().duration.as_secs(),
        n
    );
    strip.run_test();
    let (mut sum_c, mut sum_a) = (0u64, 0u64);
    for i in 0..n {
        let s = tool
            .get(strip.station_mac(i), dst, Priority::CA1, Direction::Tx)
            .expect("get stats");
        println!(
            "station {i} ({}): acked = {:>8}  collided = {:>8}",
            strip.station_mac(i),
            s.acked,
            s.collided
        );
        sum_c += s.collided;
        sum_a += s.acked;
    }
    println!("ΣCi = {sum_c}, ΣAi = {sum_a}");
    println!(
        "collision probability ΣCi/ΣAi = {:.6}",
        if sum_a == 0 {
            0.0
        } else {
            sum_c as f64 / sum_a as f64
        }
    );
}

fn cmd_faifa(args: &[String]) {
    let mut strip = strip_for(args);
    let tool = Faifa::new(strip.bus());
    let d = strip.destination_mac();
    tool.set_sniffer(d, true).expect("sniffer on");
    println!("sniffer enabled at D = {d}; running test ...");
    strip.run_test();
    let captures = tool.collect(d).expect("collect");
    println!("captured {} SoF delimiters; first 20:", captures.len());
    for ind in captures.iter().take(20) {
        println!("  {}", Faifa::format_sof(ind));
    }
    let bursts = group_bursts(&captures).expect("finite capture timestamps");
    let data = bursts.iter().filter(|b| b.is_data()).count();
    println!(
        "\n{} bursts total ({data} data, {} management)",
        bursts.len(),
        bursts.len() - data
    );
    let hist = plc_testbed::capture::burst_size_histogram(&bursts);
    for (size, count) in hist.iter() {
        println!(
            "  burst size {size}: {count} ({:.1}%)",
            100.0 * hist.frequency(size)
        );
    }
    println!("MME overhead (bursts): {:.4}", mme_overhead(&bursts));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sim") => cmd_sim(&args[1..]),
        Some("ampstat") => cmd_ampstat(&args[1..]),
        Some("faifa") => cmd_faifa(&args[1..]),
        _ => usage(),
    }
}
