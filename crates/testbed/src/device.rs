//! The emulated PLC device firmware.
//!
//! A [`Device`] models what the paper's methodology actually touches inside
//! an INT6300-class chip:
//!
//! * **per-link statistics counters** — acknowledged and collided MPDU
//!   counts keyed by (peer MAC, priority, direction), resettable and
//!   readable via the vendor statistics MME (`0xA030`). Crucially, the
//!   counters implement the selective-ACK behaviour the paper verifies:
//!   a collided MPDU whose delimiter was decoded is *acknowledged with all
//!   physical blocks in error*, so it increments **both** `acked` and
//!   `collided` — which is why the measured `ΣAᵢ` grows with N;
//! * **sniffer mode** — when enabled via `0xA034`, every SoF delimiter
//!   sensed on the medium is captured (fields only, never payload);
//! * **an MME dispatcher** — takes raw request bytes, returns raw confirm
//!   bytes, distinguishing requests by the MMType field exactly as the
//!   standard prescribes.

use plc_core::addr::{MacAddr, Tei};
use plc_core::error::{Error, Result};
use plc_core::frame::SofDelimiter;
use plc_core::mme::{
    mmtype, AmpStatCnf, AmpStatReq, Direction, MmVariant, MmeHeader, SnifferInd, SnifferReq,
    StatsControl, MMTYPE_SNIFFER, MMTYPE_STATS,
};
use plc_core::priority::Priority;
use std::collections::HashMap;

/// Statistics are kept per link: peer address, priority class, direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatKey {
    /// Peer MAC address of the link.
    pub peer: MacAddr,
    /// Channel-access priority of the counted frames.
    pub priority: Priority,
    /// Transmit- or receive-side counter.
    pub direction: Direction,
}

/// Firmware counters mirrored into a [`plc_obs::Registry`], so host-side
/// dashboards read the same numbers the ampstat MME reports.
#[derive(Clone)]
struct DeviceObs {
    tx_acked: plc_obs::Counter,
    tx_collided: plc_obs::Counter,
}

impl std::fmt::Debug for DeviceObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DeviceObs")
    }
}

/// One emulated HomePlug AV device.
#[derive(Debug, Clone)]
pub struct Device {
    mac: MacAddr,
    tei: Tei,
    stats: HashMap<StatKey, AmpStatCnf>,
    sniffer_enabled: bool,
    captured: Vec<SnifferInd>,
    obs: Option<DeviceObs>,
    /// Firmware counters count modulo this when set (a real chip's u32
    /// registers wrap; `None` models an ideal unbounded counter).
    wrap_modulus: Option<u64>,
    /// Brownout/reset events survived since construction.
    resets: u64,
}

impl Device {
    /// A device with the given addresses, counters at zero, sniffer off.
    pub fn new(mac: MacAddr, tei: Tei) -> Self {
        Device {
            mac,
            tei,
            stats: HashMap::new(),
            sniffer_enabled: false,
            captured: Vec::new(),
            obs: None,
            wrap_modulus: None,
            resets: 0,
        }
    }

    /// Make the statistics counters wrap modulo `modulus` (e.g. `1 << 32`
    /// for a chip with u32 registers). `None` restores unbounded counting.
    pub fn set_counter_wrap(&mut self, modulus: Option<u64>) {
        assert!(modulus.is_none_or(|m| m > 1), "modulus must exceed 1");
        self.wrap_modulus = modulus;
    }

    /// Brownout: the firmware reboots mid-experiment. Statistics counters
    /// clear, sniffer mode drops to its power-on default (off) and any
    /// uncollected captures are gone. Addresses and the wrap modulus are
    /// non-volatile.
    pub fn reset_firmware(&mut self) {
        self.stats.clear();
        self.sniffer_enabled = false;
        self.captured.clear();
        self.resets += 1;
    }

    /// How many firmware resets this device has survived.
    pub fn reset_count(&self) -> u64 {
        self.resets
    }

    /// Mirror this device's transmit-side firmware counters into
    /// `registry` as `testbed.dev<TEI>.tx_acked` / `.tx_collided`. The
    /// MME path stays authoritative — the registry counters are a live
    /// read-only view that must always agree with what ampstat reports.
    /// Fails if either name is already registered as a non-counter.
    pub fn attach_registry(&mut self, registry: &plc_obs::Registry) -> plc_core::error::Result<()> {
        let tei = self.tei.0;
        self.obs = Some(DeviceObs {
            tx_acked: registry.try_counter(&format!("testbed.dev{tei}.tx_acked"))?,
            tx_collided: registry.try_counter(&format!("testbed.dev{tei}.tx_collided"))?,
        });
        Ok(())
    }

    /// The device's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The device's terminal equipment identifier.
    pub fn tei(&self) -> Tei {
        self.tei
    }

    /// Whether sniffer mode is currently on.
    pub fn sniffer_enabled(&self) -> bool {
        self.sniffer_enabled
    }

    /// Number of captured delimiters waiting to be collected.
    pub fn pending_captures(&self) -> usize {
        self.captured.len()
    }

    /// Firmware hook: one of this device's transmitted MPDUs was
    /// acknowledged. `collided = true` means the SACK flagged every PB in
    /// error (the MPDU collided but its delimiter was decodable) — both
    /// counters tick, matching the observed `ΣAᵢ` growth with N.
    pub fn record_tx_ack(&mut self, peer: MacAddr, priority: Priority, collided: bool) {
        let wrap = self.wrap_modulus;
        let e = self
            .stats
            .entry(StatKey {
                peer,
                priority,
                direction: Direction::Tx,
            })
            .or_default();
        e.acked = wrapped(e.acked + 1, wrap);
        if collided {
            e.collided = wrapped(e.collided + 1, wrap);
        }
        if let Some(obs) = &self.obs {
            obs.tx_acked.inc();
            if collided {
                obs.tx_collided.inc();
            }
        }
    }

    /// Firmware hook: an MPDU from `peer` was received (receive-side
    /// counters, kept for completeness of the ampstat interface).
    pub fn record_rx(&mut self, peer: MacAddr, priority: Priority, collided: bool) {
        let wrap = self.wrap_modulus;
        let e = self
            .stats
            .entry(StatKey {
                peer,
                priority,
                direction: Direction::Rx,
            })
            .or_default();
        e.acked = wrapped(e.acked + 1, wrap);
        if collided {
            e.collided = wrapped(e.collided + 1, wrap);
        }
    }

    /// Firmware hook: a SoF delimiter was sensed on the medium. Captured
    /// only while sniffer mode is on (faifa's behaviour: delimiters of
    /// *all* PLC frames, data and management alike).
    pub fn sense_sof(&mut self, timestamp_us: f64, sof: SofDelimiter) {
        if self.sniffer_enabled {
            self.captured.push(SnifferInd { timestamp_us, sof });
        }
    }

    /// Drain the captured delimiters (the tool-side collection path wraps
    /// each one in a `0xA034` indication MME).
    pub fn drain_captures(&mut self) -> Vec<SnifferInd> {
        std::mem::take(&mut self.captured)
    }

    /// Read a counter pair (zero if the link was never used).
    pub fn stats(&self, key: &StatKey) -> AmpStatCnf {
        self.stats.get(key).copied().unwrap_or_default()
    }

    /// Handle one raw MME request addressed to this device and produce the
    /// raw confirm. Unknown MMTypes yield an error, like a chip ignoring
    /// the frame.
    pub fn handle_mme(&mut self, raw: &[u8]) -> Result<Vec<u8>> {
        let header = MmeHeader::decode(raw)?;
        if header.oda != self.mac {
            return Err(Error::invalid_config(format!(
                "MME for {} delivered to {}",
                header.oda, self.mac
            )));
        }
        if header.variant() != MmVariant::Req {
            return Err(Error::UnknownMmtype(header.mmtype));
        }
        match header.base() {
            MMTYPE_STATS => {
                let req = AmpStatReq::decode(raw)?;
                let key = StatKey {
                    peer: req.peer,
                    priority: req.priority,
                    direction: req.direction,
                };
                let current = self.stats(&key);
                if req.control == StatsControl::Reset {
                    self.stats.insert(key, AmpStatCnf::default());
                }
                // Like the real ampstat flow, the confirm carries the
                // counters as of the request (a reset reply reports the
                // pre-reset values; the tool ignores them).
                Ok(current.encode(&MmeHeader::confirm_to(&header)))
            }
            MMTYPE_SNIFFER => {
                let req = SnifferReq::decode(raw)?;
                self.sniffer_enabled = req.enable;
                // Confirm echoes the new state in the first payload byte.
                let cnf_header = MmeHeader::confirm_to(&header);
                let state = SnifferReq {
                    enable: self.sniffer_enabled,
                };
                Ok(state.encode(&cnf_header))
            }
            other => Err(Error::UnknownMmtype(other)),
        }
    }

    /// Encode the pending captures as `0xA034` indication MMEs addressed
    /// to `host` (what faifa reads off the Ethernet interface).
    pub fn capture_indications(&mut self, host: MacAddr) -> Vec<Vec<u8>> {
        let header = MmeHeader {
            oda: host,
            osa: self.mac,
            mmv: 1,
            mmtype: mmtype(MMTYPE_SNIFFER, MmVariant::Ind),
            fmi: 0,
        };
        self.drain_captures()
            .into_iter()
            .map(|ind| ind.encode(&header))
            .collect()
    }
}

/// Apply the optional counter wrap.
fn wrapped(v: u64, modulus: Option<u64>) -> u64 {
    match modulus {
        Some(m) => v % m,
        None => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(MacAddr::station(0), Tei::station(0))
    }

    fn host() -> MacAddr {
        MacAddr([0x02, 0xB0, 0x57, 0, 0, 1])
    }

    fn sof(src: u8) -> SofDelimiter {
        SofDelimiter {
            src: Tei(src),
            dst: Tei(9),
            priority: Priority::CA1,
            mpdu_cnt: 0,
            num_pbs: 4,
            fl_units: 1602,
        }
    }

    #[test]
    fn ack_counters_include_collisions() {
        let mut d = dev();
        let peer = MacAddr::station(9);
        d.record_tx_ack(peer, Priority::CA1, false);
        d.record_tx_ack(peer, Priority::CA1, true);
        d.record_tx_ack(peer, Priority::CA1, true);
        let s = d.stats(&StatKey {
            peer,
            priority: Priority::CA1,
            direction: Direction::Tx,
        });
        assert_eq!(s.acked, 3, "collided MPDUs are still acknowledged");
        assert_eq!(s.collided, 2);
    }

    #[test]
    fn registry_mirror_tracks_tx_counters() {
        let registry = plc_obs::Registry::new();
        let mut d = dev();
        d.attach_registry(&registry).unwrap();
        let peer = MacAddr::station(9);
        d.record_tx_ack(peer, Priority::CA1, false);
        d.record_tx_ack(peer, Priority::CA1, true);
        d.record_rx(peer, Priority::CA1, true); // rx is not mirrored
        let snap = registry.snapshot();
        // Tei::station(0) carries TEI 1 on the wire.
        assert_eq!(snap.counter("testbed.dev1.tx_acked"), Some(2));
        assert_eq!(snap.counter("testbed.dev1.tx_collided"), Some(1));
        // The MME-visible counters agree.
        let s = d.stats(&StatKey {
            peer,
            priority: Priority::CA1,
            direction: Direction::Tx,
        });
        assert_eq!(s.acked, 2);
        assert_eq!(s.collided, 1);
    }

    #[test]
    fn counters_are_per_link() {
        let mut d = dev();
        let a = MacAddr::station(1);
        let b = MacAddr::station(2);
        d.record_tx_ack(a, Priority::CA1, false);
        d.record_tx_ack(b, Priority::CA2, true);
        d.record_rx(a, Priority::CA1, false);
        assert_eq!(
            d.stats(&StatKey {
                peer: a,
                priority: Priority::CA1,
                direction: Direction::Tx
            })
            .acked,
            1
        );
        assert_eq!(
            d.stats(&StatKey {
                peer: b,
                priority: Priority::CA2,
                direction: Direction::Tx
            })
            .collided,
            1
        );
        assert_eq!(
            d.stats(&StatKey {
                peer: a,
                priority: Priority::CA1,
                direction: Direction::Rx
            })
            .acked,
            1
        );
        assert_eq!(
            d.stats(&StatKey {
                peer: b,
                priority: Priority::CA1,
                direction: Direction::Tx
            })
            .acked,
            0
        );
    }

    #[test]
    fn stats_mme_round_trip_and_reset() {
        let mut d = dev();
        let peer = MacAddr::station(9);
        d.record_tx_ack(peer, Priority::CA1, true);
        let req = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer,
        };
        let header = MmeHeader::request(d.mac(), host(), MMTYPE_STATS);
        let reply = d.handle_mme(&req.encode(&header)).unwrap();
        let cnf = AmpStatCnf::decode(&reply).unwrap();
        assert_eq!(cnf.acked, 1);
        assert_eq!(cnf.collided, 1);
        // Counters survive a read…
        let reply2 = d.handle_mme(&req.encode(&header)).unwrap();
        assert_eq!(AmpStatCnf::decode(&reply2).unwrap().acked, 1);
        // …and are cleared by a reset.
        let reset = AmpStatReq {
            control: StatsControl::Reset,
            ..req
        };
        d.handle_mme(&reset.encode(&header)).unwrap();
        let reply3 = d.handle_mme(&req.encode(&header)).unwrap();
        assert_eq!(AmpStatCnf::decode(&reply3).unwrap(), AmpStatCnf::default());
    }

    #[test]
    fn reply_counters_at_documented_bytes() {
        let mut d = dev();
        let peer = MacAddr::station(9);
        for _ in 0..5 {
            d.record_tx_ack(peer, Priority::CA1, false);
        }
        d.record_tx_ack(peer, Priority::CA1, true);
        let req = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer,
        };
        let header = MmeHeader::request(d.mac(), host(), MMTYPE_STATS);
        let reply = d.handle_mme(&req.encode(&header)).unwrap();
        // "bytes 25-32 … acknowledged frames, bytes 33-40 … collided".
        assert_eq!(&reply[24..32], &6u64.to_le_bytes());
        assert_eq!(&reply[32..40], &1u64.to_le_bytes());
    }

    #[test]
    fn sniffer_mode_gates_capture() {
        let mut d = dev();
        d.sense_sof(10.0, sof(1));
        assert_eq!(d.pending_captures(), 0, "sniffer off → nothing captured");
        let header = MmeHeader::request(d.mac(), host(), MMTYPE_SNIFFER);
        let on = SnifferReq { enable: true }.encode(&header);
        let reply = d.handle_mme(&on).unwrap();
        assert!(SnifferReq::decode(&reply).unwrap().enable);
        d.sense_sof(20.0, sof(1));
        d.sense_sof(30.0, sof(2));
        assert_eq!(d.pending_captures(), 2);
        let caps = d.drain_captures();
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0].timestamp_us, 20.0);
        assert_eq!(d.pending_captures(), 0);
    }

    #[test]
    fn capture_indications_decode() {
        let mut d = dev();
        d.handle_mme(&SnifferReq { enable: true }.encode(&MmeHeader::request(
            d.mac(),
            host(),
            MMTYPE_SNIFFER,
        )))
        .unwrap();
        d.sense_sof(5.5, sof(3));
        let frames = d.capture_indications(host());
        assert_eq!(frames.len(), 1);
        let ind = SnifferInd::decode(&frames[0]).unwrap();
        assert_eq!(ind.timestamp_us, 5.5);
        assert_eq!(ind.sof.src, Tei(3));
        let h = MmeHeader::decode(&frames[0]).unwrap();
        assert_eq!(h.variant(), MmVariant::Ind);
        assert_eq!(h.base(), MMTYPE_SNIFFER);
    }

    #[test]
    fn wrong_destination_rejected() {
        let mut d = dev();
        let req = SnifferReq { enable: true }.encode(&MmeHeader::request(
            MacAddr::station(42),
            host(),
            MMTYPE_SNIFFER,
        ));
        assert!(d.handle_mme(&req).is_err());
    }

    #[test]
    fn unknown_mmtype_rejected() {
        let mut d = dev();
        let header = MmeHeader::request(d.mac(), host(), 0xA1C0);
        let mut raw = header.encode().to_vec();
        raw.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            d.handle_mme(&raw),
            Err(Error::UnknownMmtype(0xA1C0))
        ));
    }

    #[test]
    fn firmware_reset_clears_volatile_state() {
        let mut d = dev();
        let peer = MacAddr::station(9);
        d.record_tx_ack(peer, Priority::CA1, true);
        d.handle_mme(&SnifferReq { enable: true }.encode(&MmeHeader::request(
            d.mac(),
            host(),
            MMTYPE_SNIFFER,
        )))
        .unwrap();
        d.sense_sof(1.0, sof(2));
        assert_eq!(d.pending_captures(), 1);
        d.reset_firmware();
        assert_eq!(d.reset_count(), 1);
        assert_eq!(
            d.stats(&StatKey {
                peer,
                priority: Priority::CA1,
                direction: Direction::Tx,
            }),
            AmpStatCnf::default(),
            "counters cleared"
        );
        assert!(!d.sniffer_enabled(), "sniffer back to power-on default");
        assert_eq!(d.pending_captures(), 0, "capture buffer gone");
        assert_eq!(d.mac(), MacAddr::station(0), "addresses survive");
    }

    #[test]
    fn counters_wrap_at_modulus() {
        let mut d = dev();
        d.set_counter_wrap(Some(5));
        let peer = MacAddr::station(9);
        for _ in 0..7 {
            d.record_tx_ack(peer, Priority::CA1, false);
        }
        let key = StatKey {
            peer,
            priority: Priority::CA1,
            direction: Direction::Tx,
        };
        assert_eq!(d.stats(&key).acked, 2, "7 mod 5");
        // Rx wraps too.
        for _ in 0..6 {
            d.record_rx(peer, Priority::CA1, false);
        }
        let rx = StatKey {
            direction: Direction::Rx,
            ..key
        };
        assert_eq!(d.stats(&rx).acked, 1, "6 mod 5");
    }

    #[test]
    fn confirm_not_handled_as_request() {
        let mut d = dev();
        let mut header = MmeHeader::request(d.mac(), host(), MMTYPE_STATS);
        header.mmtype = mmtype(MMTYPE_STATS, MmVariant::Cnf);
        let raw = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: host(),
        }
        .encode(&header);
        assert!(d.handle_mme(&raw).is_err());
    }
}
