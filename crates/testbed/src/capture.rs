//! Sniffer-capture post-processing (§3.3 of the report).
//!
//! faifa only yields SoF delimiter fields; everything the paper derives
//! from captures is computed here:
//!
//! * **burst grouping** — "To identify the end of a burst we use the
//!   MPDUCnt field of the SoF … When this number is equal to 0, the
//!   corresponding MPDU is the last one in the burst";
//! * **MME overhead** — "computed by dividing the number of bursts
//!   corresponding to MMEs by the number of bursts corresponding to data
//!   frames", bursts (not MPDUs) because bursts are what contend for the
//!   medium; data and MMEs are told apart by the LinkID priority (UDP at
//!   CA1, MMEs at CA2/CA3);
//! * **source traces** — the per-burst sequence of transmitting TEIs used
//!   for the fairness study of the paper's prior work \[4\].

use plc_core::addr::Tei;
use plc_core::error::{Error, Result};
use plc_core::mme::SnifferInd;
use plc_core::priority::Priority;
use plc_stats::hist::Histogram;

/// One reconstructed burst.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstRecord {
    /// Transmitting station.
    pub src: Tei,
    /// Priority of the burst's MPDUs (LinkID field).
    pub priority: Priority,
    /// Number of MPDUs observed in the burst.
    pub mpdus: usize,
    /// Capture timestamp of the burst's first MPDU.
    pub start_us: f64,
}

impl BurstRecord {
    /// True for best-effort (CA0/CA1) bursts — UDP data in the paper's
    /// tests.
    pub fn is_data(&self) -> bool {
        !self.priority.is_delay_sensitive()
    }
}

/// Group captured delimiters into bursts.
///
/// A burst ends at the MPDU whose `MPDUCnt` is 0. Captures are
/// demultiplexed by source and priority: a collision leaves the delimiters
/// of several stations' bursts interleaved in the capture (their robust
/// preambles are all decodable), and each source's burst must be
/// reassembled independently. Completed bursts are returned ordered by
/// their first delimiter's timestamp; bursts still open when the capture
/// ends are flushed as observed.
///
/// A capture with a non-finite device timestamp (a corrupted sniffer
/// indication) is an error; use [`group_bursts_lossy`] to skip and count
/// such records instead.
pub fn group_bursts(captures: &[SnifferInd]) -> Result<Vec<BurstRecord>> {
    for (i, ind) in captures.iter().enumerate() {
        if !ind.timestamp_us.is_finite() {
            return Err(Error::runtime(format!(
                "sniffer capture {i} has non-finite timestamp {}",
                ind.timestamp_us
            )));
        }
    }
    Ok(group_finite(captures.iter()))
}

/// [`group_bursts`] for untrusted captures: records with non-finite
/// timestamps are dropped (counted into `registry` as
/// `testbed.capture.dropped`) instead of failing the whole grouping.
pub fn group_bursts_lossy(
    captures: &[SnifferInd],
    registry: &plc_obs::Registry,
) -> Vec<BurstRecord> {
    // Degrade to uncounted dropping if the name is taken by another kind;
    // grouping must not fail over an observability clash.
    let dropped = registry.try_counter("testbed.capture.dropped").ok();
    let bursts = group_finite(captures.iter().filter(|ind| {
        let ok = ind.timestamp_us.is_finite();
        if !ok {
            if let Some(d) = &dropped {
                d.inc();
            }
        }
        ok
    }));
    bursts
}

/// Grouping core over captures already known to carry finite timestamps.
fn group_finite<'a>(captures: impl Iterator<Item = &'a SnifferInd>) -> Vec<BurstRecord> {
    let mut out: Vec<BurstRecord> = Vec::new();
    // Open bursts per (src, priority); linear scan is fine — a contention
    // domain holds at most 254 stations and usually far fewer are mid-burst.
    let mut open: Vec<BurstRecord> = Vec::new();
    for ind in captures {
        let key = (ind.sof.src, ind.sof.priority);
        let last = ind.sof.is_last_of_burst();
        match open.iter().position(|b| (b.src, b.priority) == key) {
            Some(pos) => {
                open[pos].mpdus += 1;
                if last {
                    out.push(open.remove(pos));
                }
            }
            None => {
                let b = BurstRecord {
                    src: ind.sof.src,
                    priority: ind.sof.priority,
                    mpdus: 1,
                    start_us: ind.timestamp_us,
                };
                if last {
                    out.push(b);
                } else {
                    open.push(b);
                }
            }
        }
    }
    out.extend(open);
    out.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    out
}

/// The §3.3 management overhead: MME bursts / data bursts. `NaN` when no
/// data bursts were captured.
pub fn mme_overhead(bursts: &[BurstRecord]) -> f64 {
    let data = bursts.iter().filter(|b| b.is_data()).count();
    let mme = bursts.iter().filter(|b| !b.is_data()).count();
    if data == 0 {
        f64::NAN
    } else {
        mme as f64 / data as f64
    }
}

/// Per-burst source trace, optionally restricted to data bursts (the
/// fairness methodology considers "again bursts and not individual
/// MPDUs").
pub fn source_trace(bursts: &[BurstRecord], data_only: bool) -> Vec<Tei> {
    bursts
        .iter()
        .filter(|b| !data_only || b.is_data())
        .map(|b| b.src)
        .collect()
}

/// Burst-size frequency histogram (§3.1: "we measured the frequency of
/// all the possible burst sizes").
pub fn burst_size_histogram(bursts: &[BurstRecord]) -> Histogram {
    let mut h = Histogram::new();
    for b in bursts {
        h.record(b.mpdus);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_core::frame::SofDelimiter;

    fn ind(src: u8, priority: Priority, mpdu_cnt: u8, t: f64) -> SnifferInd {
        SnifferInd {
            timestamp_us: t,
            sof: SofDelimiter {
                src: Tei(src),
                dst: Tei(9),
                priority,
                mpdu_cnt,
                num_pbs: 4,
                fl_units: 1602,
            },
        }
    }

    #[test]
    fn groups_two_mpdu_bursts() {
        let caps = vec![
            ind(1, Priority::CA1, 1, 0.0),
            ind(1, Priority::CA1, 0, 2500.0),
            ind(2, Priority::CA1, 1, 6000.0),
            ind(2, Priority::CA1, 0, 8500.0),
        ];
        let bursts = group_bursts(&caps).unwrap();
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].src, Tei(1));
        assert_eq!(bursts[0].mpdus, 2);
        assert_eq!(bursts[0].start_us, 0.0);
        assert_eq!(bursts[1].src, Tei(2));
    }

    #[test]
    fn single_mpdu_bursts() {
        let caps = vec![ind(1, Priority::CA2, 0, 0.0), ind(2, Priority::CA1, 0, 1.0)];
        let bursts = group_bursts(&caps).unwrap();
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].mpdus, 1);
        assert!(!bursts[0].is_data());
        assert!(bursts[1].is_data());
    }

    #[test]
    fn interleaved_collision_bursts_are_demultiplexed() {
        // Two stations collide: their 2-MPDU bursts interleave in the
        // capture. Each must still be reassembled as one 2-MPDU burst.
        let caps = vec![
            ind(1, Priority::CA1, 1, 0.0),
            ind(2, Priority::CA1, 1, 0.0),
            ind(1, Priority::CA1, 0, 2500.0),
            ind(2, Priority::CA1, 0, 2500.0),
        ];
        let bursts = group_bursts(&caps).unwrap();
        assert_eq!(bursts.len(), 2);
        assert!(bursts.iter().all(|b| b.mpdus == 2));
        assert!(bursts.iter().any(|b| b.src == Tei(1)));
        assert!(bursts.iter().any(|b| b.src == Tei(2)));
    }

    #[test]
    fn truncated_burst_is_flushed_at_end() {
        // Station 1's burst is cut off (lost final delimiter); station 2
        // completes one. Both appear, ordered by start time.
        let caps = vec![
            ind(1, Priority::CA1, 3, 0.0),
            ind(1, Priority::CA1, 2, 1.0),
            ind(2, Priority::CA1, 0, 2.0),
        ];
        let bursts = group_bursts(&caps).unwrap();
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].src, Tei(1));
        assert_eq!(bursts[0].mpdus, 2);
        assert_eq!(bursts[1].src, Tei(2));
    }

    #[test]
    fn trailing_open_burst_is_kept() {
        let caps = vec![ind(1, Priority::CA1, 1, 0.0)];
        let bursts = group_bursts(&caps).unwrap();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].mpdus, 1);
    }

    #[test]
    fn empty_capture() {
        assert!(group_bursts(&[]).unwrap().is_empty());
        assert!(mme_overhead(&[]).is_nan());
    }

    #[test]
    fn overhead_counts_bursts_not_mpdus() {
        // One 4-MPDU data burst vs two 1-MPDU MME bursts: overhead must be
        // 2/1, not 2/4.
        let caps = vec![
            ind(1, Priority::CA1, 3, 0.0),
            ind(1, Priority::CA1, 2, 1.0),
            ind(1, Priority::CA1, 1, 2.0),
            ind(1, Priority::CA1, 0, 3.0),
            ind(2, Priority::CA2, 0, 4.0),
            ind(3, Priority::CA3, 0, 5.0),
        ];
        let bursts = group_bursts(&caps).unwrap();
        assert_eq!(mme_overhead(&bursts), 2.0);
    }

    #[test]
    fn source_trace_filters_data() {
        let caps = vec![
            ind(1, Priority::CA1, 0, 0.0),
            ind(9, Priority::CA2, 0, 1.0),
            ind(2, Priority::CA1, 0, 2.0),
        ];
        let bursts = group_bursts(&caps).unwrap();
        assert_eq!(source_trace(&bursts, true), vec![Tei(1), Tei(2)]);
        assert_eq!(source_trace(&bursts, false), vec![Tei(1), Tei(9), Tei(2)]);
    }

    #[test]
    fn burst_histogram() {
        let caps = vec![
            ind(1, Priority::CA1, 1, 0.0),
            ind(1, Priority::CA1, 0, 1.0),
            ind(2, Priority::CA1, 1, 2.0),
            ind(2, Priority::CA1, 0, 3.0),
            ind(3, Priority::CA1, 0, 4.0),
        ];
        let h = burst_size_histogram(&group_bursts(&caps).unwrap());
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.mode(), Some(2));
    }

    #[test]
    fn non_finite_timestamp_is_an_error_not_a_panic() {
        let caps = vec![
            ind(1, Priority::CA1, 1, 0.0),
            ind(1, Priority::CA1, 0, f64::NAN),
        ];
        let err = group_bursts(&caps).unwrap_err();
        assert!(matches!(err, Error::Runtime { .. }));
        assert!(err.to_string().contains("capture 1"));
        assert!(group_bursts(&[ind(1, Priority::CA1, 0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn lossy_grouping_drops_and_counts_bad_captures() {
        let registry = plc_obs::Registry::new();
        let caps = vec![
            ind(1, Priority::CA1, 1, 0.0),
            ind(2, Priority::CA1, 0, f64::NAN),
            ind(1, Priority::CA1, 0, 2500.0),
        ];
        let bursts = group_bursts_lossy(&caps, &registry);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].src, Tei(1));
        assert_eq!(bursts[0].mpdus, 2);
        assert_eq!(
            registry.snapshot().counter("testbed.capture.dropped"),
            Some(1)
        );
    }

    #[test]
    fn lossy_grouping_matches_strict_on_clean_captures() {
        let registry = plc_obs::Registry::new();
        let caps = vec![
            ind(1, Priority::CA1, 1, 0.0),
            ind(1, Priority::CA1, 0, 1.0),
            ind(2, Priority::CA2, 0, 2.0),
        ];
        assert_eq!(
            group_bursts_lossy(&caps, &registry),
            group_bursts(&caps).unwrap()
        );
        assert_eq!(
            registry.snapshot().counter("testbed.capture.dropped"),
            Some(0)
        );
    }
}
