//! Tone-map adaptation: channel-dependent management traffic.
//!
//! §4.1 of the report: "some of these messages are exchanged for updating
//! the modulation scheme when the error rate of the channel changes.
//! Hence, their arrival rate depends also on the channel conditions."
//! This harness closes that loop on the emulated testbed:
//!
//! * each station's link drifts away from its negotiated tone map at a
//!   configurable rate (dB of SNR margin per second — power-line channels
//!   drift as appliances switch), raising its per-PB error probability
//!   along the PHY model's waterfall;
//! * the device firmware watches its own SACK feedback (delivered vs
//!   errored PBs over a sliding window, exactly what it can see); when
//!   the observed error rate crosses a threshold it exchanges a tone-map
//!   update MME with the destination, which restores the margin;
//! * the harness counts those updates — making the MME rate an *output*
//!   of channel conditions rather than a configured constant.

use plc_core::units::Microseconds;
use plc_mac::Backoff1901;
use plc_phy::error::PbErrorModel;
use plc_sim::engine::{EngineConfig, SlottedEngine, StationSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one adaptation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationConfig {
    /// Number of stations.
    pub n: usize,
    /// Run duration.
    pub duration: Microseconds,
    /// SNR margin right after a tone-map (re-)negotiation (dB).
    pub base_margin_db: f64,
    /// Margin decay rate as the channel drifts (dB per second).
    pub drift_db_per_s: f64,
    /// Firmware trigger: re-negotiate when the windowed PB error rate
    /// exceeds this.
    pub error_threshold: f64,
    /// Evaluation window (µs) between firmware error-rate checks.
    pub check_interval_us: f64,
    /// Minimum PB observations before a window is judged (noise guard —
    /// real firmware must not renegotiate on a handful of samples).
    pub min_window_pbs: u64,
    /// Enable the adaptation loop (disable to watch the channel rot).
    pub adapt: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            n: 3,
            duration: Microseconds::from_secs(30.0),
            base_margin_db: 3.0,
            drift_db_per_s: 0.5,
            error_threshold: 0.05,
            check_interval_us: 50_000.0,
            min_window_pbs: 200,
            adapt: true,
            seed: 1,
        }
    }
}

/// Outcome of one adaptation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationOutcome {
    /// Tone-map update MMEs exchanged, per station.
    pub updates_per_station: Vec<u64>,
    /// Network-wide update rate (updates per second).
    pub update_rate_per_s: f64,
    /// Goodput over the run.
    pub goodput: f64,
    /// Mean per-PB error probability at the end of the run.
    pub final_mean_error_prob: f64,
}

/// Run the adaptation loop.
pub fn run(cfg: &AdaptationConfig) -> AdaptationOutcome {
    assert!(cfg.n >= 1);
    let mut proc_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xADA7);
    let base_p = PbErrorModel::with_margin(cfg.base_margin_db).pb_error_prob();
    let stations: Vec<StationSpec<Backoff1901>> = (0..cfg.n)
        .map(|_| StationSpec {
            pb_error_prob: Some(base_p),
            ..StationSpec::saturated(Backoff1901::default_ca1(&mut proc_rng))
        })
        .collect();
    let engine_cfg = EngineConfig {
        horizon: cfg.duration,
        emit_wire_events: false,
        ..EngineConfig::paper_default()
    };
    let mut engine = SlottedEngine::new(engine_cfg, stations, cfg.seed);

    // Firmware-side state: last negotiation time and last-seen PB counters
    // per station (the device only sees its own SACK feedback).
    let mut last_update_us = vec![0.0f64; cfg.n];
    let mut seen = vec![(0u64, 0u64); cfg.n]; // (delivered, errored)
    let mut updates = vec![0u64; cfg.n];
    let mut next_check = cfg.check_interval_us;

    while engine.time() <= cfg.duration {
        engine.step();
        let now = engine.time().as_micros();
        if now < next_check {
            continue;
        }
        next_check = now + cfg.check_interval_us;
        for i in 0..cfg.n {
            // Channel keeps drifting regardless of traffic.
            let margin = cfg.base_margin_db - cfg.drift_db_per_s * (now - last_update_us[i]) / 1e6;
            engine.set_station_pb_error(
                i,
                PbErrorModel::with_margin(margin).pb_error_prob().min(0.999),
            );
            if !cfg.adapt {
                continue;
            }
            // Firmware check: windowed error rate from SACK feedback. The
            // window keeps accumulating until it holds enough PB samples
            // to judge (otherwise a couple of unlucky blocks would trigger
            // spurious renegotiations).
            let s = &engine.metrics().per_station[i];
            let (d0, e0) = seen[i];
            let (d1, e1) = (s.pbs_delivered, s.pbs_errored);
            let window_total = (d1 - d0) + (e1 - e0);
            if window_total < cfg.min_window_pbs {
                continue;
            }
            seen[i] = (d1, e1);
            let err_rate = (e1 - e0) as f64 / window_total as f64;
            if err_rate > cfg.error_threshold {
                // Tone-map update exchange: margin restored.
                updates[i] += 1;
                last_update_us[i] = now;
                engine.set_station_pb_error(i, base_p);
            }
        }
    }

    let metrics = engine.metrics();
    let final_mean = (0..cfg.n)
        .map(|i| {
            let margin = cfg.base_margin_db
                - cfg.drift_db_per_s * (cfg.duration.as_micros() - last_update_us[i]) / 1e6;
            PbErrorModel::with_margin(margin).pb_error_prob().min(0.999)
        })
        .sum::<f64>()
        / cfg.n as f64;
    AdaptationOutcome {
        update_rate_per_s: updates.iter().sum::<u64>() as f64 / cfg.duration.as_secs(),
        updates_per_station: updates,
        goodput: metrics.goodput(),
        final_mean_error_prob: final_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_rate_tracks_channel_drift() {
        // §4.1's claim made quantitative: faster-changing channels force
        // more tone-map MMEs.
        let rate = |drift: f64| {
            run(&AdaptationConfig {
                drift_db_per_s: drift,
                ..Default::default()
            })
            .update_rate_per_s
        };
        let slow = rate(0.25);
        let fast = rate(2.0);
        assert!(slow > 0.0, "even a slow drift eventually forces updates");
        assert!(
            fast > 3.0 * slow,
            "8× the drift must give ≫ updates: slow {slow}, fast {fast}"
        );
    }

    #[test]
    fn adaptation_preserves_goodput() {
        let with = run(&AdaptationConfig {
            adapt: true,
            ..Default::default()
        });
        let without = run(&AdaptationConfig {
            adapt: false,
            ..Default::default()
        });
        assert!(
            with.goodput > without.goodput + 0.03,
            "adaptation must pay for itself: {} vs {}",
            with.goodput,
            without.goodput
        );
        // Without adaptation the channel rots toward high error rates.
        assert!(without.final_mean_error_prob > 10.0 * with.final_mean_error_prob);
        assert_eq!(without.update_rate_per_s, 0.0);
    }

    #[test]
    fn stable_channel_needs_no_updates() {
        let out = run(&AdaptationConfig {
            drift_db_per_s: 0.0,
            ..Default::default()
        });
        assert_eq!(out.updates_per_station.iter().sum::<u64>(), 0);
        assert!(out.goodput > 0.5);
    }

    #[test]
    fn deterministic() {
        let a = run(&AdaptationConfig::default());
        let b = run(&AdaptationConfig::default());
        assert_eq!(a, b);
    }
}
