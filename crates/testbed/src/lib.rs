//! # plc-testbed — an emulated HomePlug AV testbed
//!
//! The paper's experimental framework drives real HomePlug AV devices
//! (INT6300 chips on a power strip) through two tools: `ampstat` from the
//! Atheros Open PLC Toolkit (vendor MME `0xA030`, acknowledged/collided
//! frame counters) and `faifa` (vendor MME `0xA034`, sniffer mode that
//! captures SoF delimiters). This crate reproduces that setup in software,
//! end to end:
//!
//! * [`device::Device`] — emulated PLC firmware: per-link statistics
//!   counters with the 1901 selective-ACK semantics (collided MPDUs are
//!   acknowledged-with-errors, so `Aᵢ` includes them), a sniffer mode, and
//!   a byte-level MME request/confirm handler.
//! * [`bus::MgmtBus`] — the host's management path to the devices
//!   (in-process stand-in for raw Ethernet), routing encoded MMEs by
//!   destination MAC.
//! * [`tools::AmpStat`] / [`tools::Faifa`] — faithful re-implementations
//!   of the two tools' workflows, speaking real wire-format MMEs over the
//!   bus (the ampstat reply carries the counters at the exact byte
//!   offsets the report quotes: bytes 25–32 and 33–40).
//! * [`powerstrip::PowerStrip`] — the physical setup: N transmitting
//!   stations plus a destination `D` on one contention domain, backed by
//!   the `plc-sim` multi-class engine; UDP data flows at CA1, management
//!   messages at CA2, exactly as the paper observes.
//! * [`capture`] — the sniffer post-processing: burst detection via the
//!   SoF `MPDUCnt` field, MME-overhead computation over *bursts*, and
//!   per-source transmission traces for fairness studies.
//! * [`adaptation`] — tone-map adaptation: §4.1's channel-dependent MME
//!   rate closed-loop (devices watch their SACK error feedback, drifting
//!   channels force re-negotiations);
//! * [`experiment`] — the §3.2 measurement methodology: reset statistics
//!   at every station, run the test, query `ΣCᵢ`/`ΣAᵢ`, and report
//!   `ΣCᵢ / ΣAᵢ` — generating Table 2 and the measurement series of
//!   Figure 2.
//!
//! The whole stack is fault-aware: a [`plc_faults::FaultPlan`] on the
//! [`TestbedConfig`] injects deterministic MME loss/delay on the bus,
//! device brownouts and counter wrap, while the tools retry with bounded
//! backoff and the experiment layer stitches counter discontinuities (see
//! [`experiment`]'s module docs).
//!
//! Everything a real measurement would see — counter values, reply bytes,
//! captured delimiter fields — passes through the same wire formats as on
//! hardware, so the analysis code cannot cheat.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptation;
pub mod bus;
pub mod capture;
pub mod device;
pub mod experiment;
pub mod powerstrip;
pub mod tools;

pub use bus::{MgmtBus, SharedMmeFaults};
pub use capture::{group_bursts, group_bursts_lossy, mme_overhead, source_trace, BurstRecord};
pub use device::{Device, StatKey};
pub use experiment::{mean_collision_probability, CollisionExperiment, ExperimentOutcome};
pub use powerstrip::{PowerStrip, TestbedConfig};
pub use tools::{AmpStat, Faifa};
