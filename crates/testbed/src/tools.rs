//! Re-implementations of the two measurement tools.
//!
//! * [`AmpStat`] mirrors the `ampstat` workflow of the Atheros Open PLC
//!   Toolkit: "we can reset to 0 or retrieve the number of acknowledged
//!   and collided PLC frames (MPDUs) given the destination MAC address,
//!   the priority, and the direction … of a specific link", via MMType
//!   `0xA030`, reading the counters from reply bytes 25–32 / 33–40.
//! * [`Faifa`] mirrors `faifa`: it "activates the 'sniffer' mode of the
//!   devices (using the option 0xA034 for the MMType of the MME)", then
//!   collects and prints the captured SoF delimiter fields.
//!
//! Both speak raw wire-format MMEs over the [`MgmtBus`]; nothing here
//! peeks inside the device structs.
//!
//! Both tools are **retrying clients**: a transaction that times out (a
//! lost request or confirm leg under fault injection) is retried with
//! bounded exponential backoff and deterministic jitter, up to the
//! [`RetryPolicy`]'s attempt budget. Every tool operation is idempotent —
//! reads read, resets reset, sniffer control sets an absolute state — so
//! retrying a transaction whose side effects may or may not have applied
//! is always safe. Backoff delays are *virtual*: they are accounted (see
//! the `testbed.mme.backoff_us` counter) but never slept, keeping tests
//! fast and deterministic.

use crate::bus::MgmtBus;
use parking_lot::Mutex;
use plc_core::addr::MacAddr;
use plc_core::error::{Error, Result};
use plc_core::mme::{
    AmpStatCnf, AmpStatReq, Direction, MmeHeader, SnifferInd, SnifferReq, StatsControl,
    MMTYPE_SNIFFER, MMTYPE_STATS,
};
use plc_core::priority::Priority;
use plc_faults::{FaultRng, RetryPolicy};

/// Retry-metric counters (`testbed.mme.*`). Observability only: attaching
/// them never changes which transactions succeed.
struct MmeClientObs {
    attempts: plc_obs::Counter,
    retries: plc_obs::Counter,
    gave_up: plc_obs::Counter,
    backoff_us: plc_obs::Counter,
}

/// The transaction layer the tools share: a bus plus retry state.
struct MmeClient {
    bus: MgmtBus,
    retry: RetryPolicy,
    jitter: Mutex<FaultRng>,
    obs: Option<MmeClientObs>,
}

impl MmeClient {
    fn new(bus: MgmtBus) -> Self {
        let retry = RetryPolicy::default();
        MmeClient {
            bus,
            jitter: Mutex::new(retry.jitter_rng()),
            retry,
            obs: None,
        }
    }

    fn set_retry(&mut self, retry: RetryPolicy) {
        self.jitter = Mutex::new(retry.jitter_rng());
        self.retry = retry;
    }

    fn attach_registry(&mut self, registry: &plc_obs::Registry) -> Result<()> {
        self.obs = Some(MmeClientObs {
            attempts: registry.try_counter("testbed.mme.attempts")?,
            retries: registry.try_counter("testbed.mme.retries")?,
            gave_up: registry.try_counter("testbed.mme.gave_up")?,
            backoff_us: registry.try_counter("testbed.mme.backoff_us")?,
        });
        Ok(())
    }

    /// Run one idempotent transaction with retries. Non-retryable errors
    /// (parse failures, unknown devices) surface immediately; timeouts are
    /// retried until the budget is spent, then reported as
    /// [`Error::RetriesExhausted`] wrapping the final timeout.
    fn transact<T>(&self, mut op: impl FnMut(&MgmtBus) -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            if let Some(o) = &self.obs {
                o.attempts.inc();
            }
            match op(&self.bus) {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        if let Some(o) = &self.obs {
                            o.gave_up.inc();
                        }
                        return Err(Error::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    let backoff = self.retry.backoff_us(attempt - 1, &mut self.jitter.lock());
                    if let Some(o) = &self.obs {
                        o.retries.inc();
                        o.backoff_us.add(backoff as u64);
                    }
                }
            }
        }
    }
}

/// The statistics tool.
pub struct AmpStat {
    client: MmeClient,
}

impl AmpStat {
    /// Tool over a bus, with the default [`RetryPolicy`] (on a fault-free
    /// bus nothing ever times out, so retries are dormant).
    pub fn new(bus: MgmtBus) -> Self {
        AmpStat {
            client: MmeClient::new(bus),
        }
    }

    /// Replace the retry policy ([`RetryPolicy::none`] restores the
    /// fail-fast behaviour of a bare tool).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.client.set_retry(retry);
        self
    }

    /// Count transaction attempts, retries, give-ups and total virtual
    /// backoff into `registry` (`testbed.mme.attempts` / `.retries` /
    /// `.gave_up` / `.backoff_us`). Fails if any of those names is
    /// already registered as a non-counter.
    pub fn attach_registry(&mut self, registry: &plc_obs::Registry) -> Result<()> {
        self.client.attach_registry(registry)
    }

    fn request(
        &self,
        device: MacAddr,
        control: StatsControl,
        peer: MacAddr,
        priority: Priority,
        direction: Direction,
    ) -> Result<AmpStatCnf> {
        let req = AmpStatReq {
            control,
            direction,
            priority,
            peer,
        };
        let raw = req.encode(&MmeHeader::request(
            device,
            self.client.bus.host_mac(),
            MMTYPE_STATS,
        ));
        self.client.transact(|bus| {
            let reply = bus.send(&raw)?;
            AmpStatCnf::decode(&reply)
        })
    }

    /// Reset the counters of a link (the start-of-test step of §3.2).
    pub fn reset(
        &self,
        device: MacAddr,
        peer: MacAddr,
        priority: Priority,
        direction: Direction,
    ) -> Result<()> {
        self.request(device, StatsControl::Reset, peer, priority, direction)?;
        Ok(())
    }

    /// Read the counters of a link (the end-of-test step of §3.2).
    pub fn get(
        &self,
        device: MacAddr,
        peer: MacAddr,
        priority: Priority,
        direction: Direction,
    ) -> Result<AmpStatCnf> {
        self.request(device, StatsControl::Read, peer, priority, direction)
    }
}

/// The sniffer tool.
pub struct Faifa {
    client: MmeClient,
}

impl Faifa {
    /// Tool over a bus, with the default [`RetryPolicy`].
    pub fn new(bus: MgmtBus) -> Self {
        Faifa {
            client: MmeClient::new(bus),
        }
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.client.set_retry(retry);
        self
    }

    /// Count transaction attempts, retries, give-ups and total virtual
    /// backoff into `registry` (`testbed.mme.*`, shared with [`AmpStat`]).
    /// Fails if any of those names is already registered as a non-counter.
    pub fn attach_registry(&mut self, registry: &plc_obs::Registry) -> Result<()> {
        self.client.attach_registry(registry)
    }

    /// Enable or disable the sniffer mode of `device`; returns the state
    /// the device confirms. Idempotent (the request carries an absolute
    /// state, not a toggle), so retrying is safe.
    pub fn set_sniffer(&self, device: MacAddr, enable: bool) -> Result<bool> {
        let raw = SnifferReq { enable }.encode(&MmeHeader::request(
            device,
            self.client.bus.host_mac(),
            MMTYPE_SNIFFER,
        ));
        self.client.transact(|bus| {
            let reply = bus.send(&raw)?;
            Ok(SnifferReq::decode(&reply)?.enable)
        })
    }

    /// Collect (and drain) the delimiters captured by `device`, decoding
    /// each indication MME. A failed poll leaves the device's buffer
    /// intact (see [`MgmtBus::collect_indications`]), so a retried collect
    /// loses nothing.
    pub fn collect(&self, device: MacAddr) -> Result<Vec<SnifferInd>> {
        self.client.transact(|bus| {
            let frames = bus.collect_indications(device)?;
            frames.iter().map(|f| SnifferInd::decode(f)).collect()
        })
    }

    /// Render one captured delimiter the way faifa prints SoF fields.
    pub fn format_sof(ind: &SnifferInd) -> String {
        format!(
            "t={:>12.2}us SoF src={} dst={} LinkID={} MPDUCnt={} PBs={} FL={}",
            ind.timestamp_us,
            ind.sof.src,
            ind.sof.dst,
            ind.sof.priority,
            ind.sof.mpdu_cnt,
            ind.sof.num_pbs,
            ind.sof.fl_units,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::DeviceTable;
    use crate::device::Device;
    use parking_lot::Mutex;
    use plc_core::addr::Tei;
    use plc_core::frame::SofDelimiter;
    use std::sync::Arc;

    fn setup() -> (MgmtBus, DeviceTable) {
        let devices: DeviceTable = Arc::new(Mutex::new(vec![
            Device::new(MacAddr::station(0), Tei::station(0)),
            Device::new(MacAddr::station(1), Tei::station(1)),
        ]));
        (
            MgmtBus::new(devices.clone(), MacAddr([0x02, 0xB0, 0x57, 0, 0, 1])),
            devices,
        )
    }

    #[test]
    fn ampstat_reset_then_get() {
        let (bus, devices) = setup();
        let tool = AmpStat::new(bus);
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);
        // Simulate firmware activity.
        devices.lock()[0].record_tx_ack(peer, Priority::CA1, true);
        devices.lock()[0].record_tx_ack(peer, Priority::CA1, false);
        let s = tool.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        assert_eq!(s.acked, 2);
        assert_eq!(s.collided, 1);
        tool.reset(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        let s2 = tool.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        assert_eq!(s2, AmpStatCnf::default());
    }

    #[test]
    fn ampstat_distinguishes_priorities() {
        let (bus, devices) = setup();
        let tool = AmpStat::new(bus);
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);
        devices.lock()[0].record_tx_ack(peer, Priority::CA1, false);
        devices.lock()[0].record_tx_ack(peer, Priority::CA2, false);
        assert_eq!(
            tool.get(dev, peer, Priority::CA1, Direction::Tx)
                .unwrap()
                .acked,
            1
        );
        assert_eq!(
            tool.get(dev, peer, Priority::CA2, Direction::Tx)
                .unwrap()
                .acked,
            1
        );
        assert_eq!(
            tool.get(dev, peer, Priority::CA3, Direction::Tx)
                .unwrap()
                .acked,
            0
        );
    }

    #[test]
    fn faifa_sniffer_cycle() {
        let (bus, devices) = setup();
        let tool = Faifa::new(bus);
        let dev = MacAddr::station(0);
        assert!(tool.set_sniffer(dev, true).unwrap());
        devices.lock()[0].sense_sof(
            42.0,
            SofDelimiter {
                src: Tei(2),
                dst: Tei(1),
                priority: Priority::CA1,
                mpdu_cnt: 1,
                num_pbs: 4,
                fl_units: 1602,
            },
        );
        let caps = tool.collect(dev).unwrap();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].sof.src, Tei(2));
        // Drained: second collect is empty.
        assert!(tool.collect(dev).unwrap().is_empty());
        assert!(!tool.set_sniffer(dev, false).unwrap());
    }

    #[test]
    fn faifa_print_format_has_all_fields() {
        let ind = SnifferInd {
            timestamp_us: 1.5,
            sof: SofDelimiter {
                src: Tei(3),
                dst: Tei(8),
                priority: Priority::CA2,
                mpdu_cnt: 0,
                num_pbs: 4,
                fl_units: 1602,
            },
        };
        let line = Faifa::format_sof(&ind);
        for needle in ["TEI#3", "TEI#8", "CA2", "MPDUCnt=0", "PBs=4", "FL=1602"] {
            assert!(line.contains(needle), "missing {needle} in: {line}");
        }
    }

    #[test]
    fn tools_error_on_unknown_device() {
        let (bus, _) = setup();
        let amp = AmpStat::new(bus.clone());
        let faifa = Faifa::new(bus);
        let ghost = MacAddr::station(42);
        assert!(amp.get(ghost, ghost, Priority::CA1, Direction::Tx).is_err());
        assert!(faifa.set_sniffer(ghost, true).is_err());
    }

    fn lossy(bus: &MgmtBus, seed: u64, loss: f64) -> MgmtBus {
        let plan = plc_faults::FaultPlan::builder()
            .seed(seed)
            .mme_loss(loss)
            .build();
        bus.clone()
            .with_faults(Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(
                &plan,
            ))))
    }

    #[test]
    fn retrying_ampstat_reads_exact_counters_through_lossy_bus() {
        let (bus, devices) = setup();
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);
        for k in 0..57 {
            devices.lock()[0].record_tx_ack(peer, Priority::CA1, k % 5 == 0);
        }
        let clean = AmpStat::new(bus.clone())
            .get(dev, peer, Priority::CA1, Direction::Tx)
            .unwrap();
        let tool = AmpStat::new(lossy(&bus, 11, 0.3)).with_retry(RetryPolicy::with_attempts(64));
        for _ in 0..20 {
            let s = tool.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
            assert_eq!(s, clean, "retries must converge to the exact counters");
        }
    }

    #[test]
    fn exhausted_retries_report_the_final_timeout() {
        let (bus, _) = setup();
        let tool = AmpStat::new(lossy(&bus, 12, 1.0)).with_retry(RetryPolicy::with_attempts(3));
        let err = tool
            .get(
                MacAddr::station(0),
                MacAddr::station(1),
                Priority::CA1,
                Direction::Tx,
            )
            .unwrap_err();
        let plc_core::error::Error::RetriesExhausted { attempts, last } = &err else {
            panic!("expected RetriesExhausted, got {err}");
        };
        assert_eq!(*attempts, 3);
        assert!(last.is_retryable(), "the final failure was a timeout");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn retry_metrics_count_without_perturbing() {
        let (bus, devices) = setup();
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);
        devices.lock()[0].record_tx_ack(peer, Priority::CA1, false);
        let plain = AmpStat::new(lossy(&bus, 13, 0.4)).with_retry(RetryPolicy::with_attempts(32));
        let registry = plc_obs::Registry::new();
        let mut counted =
            AmpStat::new(lossy(&bus, 13, 0.4)).with_retry(RetryPolicy::with_attempts(32));
        counted.attach_registry(&registry).unwrap();
        let a = plain.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        let b = counted
            .get(dev, peer, Priority::CA1, Direction::Tx)
            .unwrap();
        assert_eq!(a, b);
        let snap = registry.snapshot();
        let attempts = snap.counter("testbed.mme.attempts").unwrap_or(0);
        let retries = snap.counter("testbed.mme.retries").unwrap_or(0);
        assert!(attempts >= 1);
        assert_eq!(retries, attempts - 1, "every attempt but the last retried");
        assert_eq!(snap.counter("testbed.mme.gave_up"), Some(0));
    }

    #[test]
    fn faifa_retries_collect_losslessly() {
        use plc_core::frame::SofDelimiter;
        let (bus, devices) = setup();
        let dev = MacAddr::station(0);
        {
            let mut d = devices.lock();
            d[0].handle_mme(&SnifferReq { enable: true }.encode(&MmeHeader::request(
                dev,
                bus.host_mac(),
                MMTYPE_SNIFFER,
            )))
            .unwrap();
            for k in 0..5u8 {
                d[0].sense_sof(
                    k as f64,
                    SofDelimiter {
                        src: Tei(k + 1),
                        dst: Tei(9),
                        priority: Priority::CA1,
                        mpdu_cnt: 0,
                        num_pbs: 4,
                        fl_units: 1602,
                    },
                );
            }
        }
        let tool = Faifa::new(lossy(&bus, 14, 0.5)).with_retry(RetryPolicy::with_attempts(64));
        let caps = tool.collect(dev).unwrap();
        assert_eq!(caps.len(), 5, "no capture may be lost to a failed poll");
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        // An unknown device is permanent: the retrying client must not
        // burn its attempt budget on it.
        let (bus, _) = setup();
        let registry = plc_obs::Registry::new();
        let mut tool = AmpStat::new(bus).with_retry(RetryPolicy::with_attempts(10));
        tool.attach_registry(&registry).unwrap();
        let ghost = MacAddr::station(42);
        assert!(tool
            .get(ghost, ghost, Priority::CA1, Direction::Tx)
            .is_err());
        assert_eq!(registry.snapshot().counter("testbed.mme.attempts"), Some(1));
    }
}
