//! Re-implementations of the two measurement tools.
//!
//! * [`AmpStat`] mirrors the `ampstat` workflow of the Atheros Open PLC
//!   Toolkit: "we can reset to 0 or retrieve the number of acknowledged
//!   and collided PLC frames (MPDUs) given the destination MAC address,
//!   the priority, and the direction … of a specific link", via MMType
//!   `0xA030`, reading the counters from reply bytes 25–32 / 33–40.
//! * [`Faifa`] mirrors `faifa`: it "activates the 'sniffer' mode of the
//!   devices (using the option 0xA034 for the MMType of the MME)", then
//!   collects and prints the captured SoF delimiter fields.
//!
//! Both speak raw wire-format MMEs over the [`MgmtBus`]; nothing here
//! peeks inside the device structs.

use crate::bus::MgmtBus;
use plc_core::addr::MacAddr;
use plc_core::error::Result;
use plc_core::mme::{
    AmpStatCnf, AmpStatReq, Direction, MmeHeader, SnifferInd, SnifferReq, StatsControl,
    MMTYPE_SNIFFER, MMTYPE_STATS,
};
use plc_core::priority::Priority;

/// The statistics tool.
pub struct AmpStat {
    bus: MgmtBus,
}

impl AmpStat {
    /// Tool over a bus.
    pub fn new(bus: MgmtBus) -> Self {
        AmpStat { bus }
    }

    fn request(
        &self,
        device: MacAddr,
        control: StatsControl,
        peer: MacAddr,
        priority: Priority,
        direction: Direction,
    ) -> Result<AmpStatCnf> {
        let req = AmpStatReq {
            control,
            direction,
            priority,
            peer,
        };
        let raw = req.encode(&MmeHeader::request(
            device,
            self.bus.host_mac(),
            MMTYPE_STATS,
        ));
        let reply = self.bus.send(&raw)?;
        AmpStatCnf::decode(&reply)
    }

    /// Reset the counters of a link (the start-of-test step of §3.2).
    pub fn reset(
        &self,
        device: MacAddr,
        peer: MacAddr,
        priority: Priority,
        direction: Direction,
    ) -> Result<()> {
        self.request(device, StatsControl::Reset, peer, priority, direction)?;
        Ok(())
    }

    /// Read the counters of a link (the end-of-test step of §3.2).
    pub fn get(
        &self,
        device: MacAddr,
        peer: MacAddr,
        priority: Priority,
        direction: Direction,
    ) -> Result<AmpStatCnf> {
        self.request(device, StatsControl::Read, peer, priority, direction)
    }
}

/// The sniffer tool.
pub struct Faifa {
    bus: MgmtBus,
}

impl Faifa {
    /// Tool over a bus.
    pub fn new(bus: MgmtBus) -> Self {
        Faifa { bus }
    }

    /// Enable or disable the sniffer mode of `device`; returns the state
    /// the device confirms.
    pub fn set_sniffer(&self, device: MacAddr, enable: bool) -> Result<bool> {
        let raw = SnifferReq { enable }.encode(&MmeHeader::request(
            device,
            self.bus.host_mac(),
            MMTYPE_SNIFFER,
        ));
        let reply = self.bus.send(&raw)?;
        Ok(SnifferReq::decode(&reply)?.enable)
    }

    /// Collect (and drain) the delimiters captured by `device`, decoding
    /// each indication MME.
    pub fn collect(&self, device: MacAddr) -> Result<Vec<SnifferInd>> {
        let frames = self.bus.collect_indications(device)?;
        frames.iter().map(|f| SnifferInd::decode(f)).collect()
    }

    /// Render one captured delimiter the way faifa prints SoF fields.
    pub fn format_sof(ind: &SnifferInd) -> String {
        format!(
            "t={:>12.2}us SoF src={} dst={} LinkID={} MPDUCnt={} PBs={} FL={}",
            ind.timestamp_us,
            ind.sof.src,
            ind.sof.dst,
            ind.sof.priority,
            ind.sof.mpdu_cnt,
            ind.sof.num_pbs,
            ind.sof.fl_units,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::DeviceTable;
    use crate::device::Device;
    use parking_lot::Mutex;
    use plc_core::addr::Tei;
    use plc_core::frame::SofDelimiter;
    use std::sync::Arc;

    fn setup() -> (MgmtBus, DeviceTable) {
        let devices: DeviceTable = Arc::new(Mutex::new(vec![
            Device::new(MacAddr::station(0), Tei::station(0)),
            Device::new(MacAddr::station(1), Tei::station(1)),
        ]));
        (
            MgmtBus::new(devices.clone(), MacAddr([0x02, 0xB0, 0x57, 0, 0, 1])),
            devices,
        )
    }

    #[test]
    fn ampstat_reset_then_get() {
        let (bus, devices) = setup();
        let tool = AmpStat::new(bus);
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);
        // Simulate firmware activity.
        devices.lock()[0].record_tx_ack(peer, Priority::CA1, true);
        devices.lock()[0].record_tx_ack(peer, Priority::CA1, false);
        let s = tool.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        assert_eq!(s.acked, 2);
        assert_eq!(s.collided, 1);
        tool.reset(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        let s2 = tool.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        assert_eq!(s2, AmpStatCnf::default());
    }

    #[test]
    fn ampstat_distinguishes_priorities() {
        let (bus, devices) = setup();
        let tool = AmpStat::new(bus);
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);
        devices.lock()[0].record_tx_ack(peer, Priority::CA1, false);
        devices.lock()[0].record_tx_ack(peer, Priority::CA2, false);
        assert_eq!(
            tool.get(dev, peer, Priority::CA1, Direction::Tx)
                .unwrap()
                .acked,
            1
        );
        assert_eq!(
            tool.get(dev, peer, Priority::CA2, Direction::Tx)
                .unwrap()
                .acked,
            1
        );
        assert_eq!(
            tool.get(dev, peer, Priority::CA3, Direction::Tx)
                .unwrap()
                .acked,
            0
        );
    }

    #[test]
    fn faifa_sniffer_cycle() {
        let (bus, devices) = setup();
        let tool = Faifa::new(bus);
        let dev = MacAddr::station(0);
        assert!(tool.set_sniffer(dev, true).unwrap());
        devices.lock()[0].sense_sof(
            42.0,
            SofDelimiter {
                src: Tei(2),
                dst: Tei(1),
                priority: Priority::CA1,
                mpdu_cnt: 1,
                num_pbs: 4,
                fl_units: 1602,
            },
        );
        let caps = tool.collect(dev).unwrap();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].sof.src, Tei(2));
        // Drained: second collect is empty.
        assert!(tool.collect(dev).unwrap().is_empty());
        assert!(!tool.set_sniffer(dev, false).unwrap());
    }

    #[test]
    fn faifa_print_format_has_all_fields() {
        let ind = SnifferInd {
            timestamp_us: 1.5,
            sof: SofDelimiter {
                src: Tei(3),
                dst: Tei(8),
                priority: Priority::CA2,
                mpdu_cnt: 0,
                num_pbs: 4,
                fl_units: 1602,
            },
        };
        let line = Faifa::format_sof(&ind);
        for needle in ["TEI#3", "TEI#8", "CA2", "MPDUCnt=0", "PBs=4", "FL=1602"] {
            assert!(line.contains(needle), "missing {needle} in: {line}");
        }
    }

    #[test]
    fn tools_error_on_unknown_device() {
        let (bus, _) = setup();
        let amp = AmpStat::new(bus.clone());
        let faifa = Faifa::new(bus);
        let ghost = MacAddr::station(42);
        assert!(amp.get(ghost, ghost, Priority::CA1, Direction::Tx).is_err());
        assert!(faifa.set_sniffer(ghost, true).is_err());
    }
}
