//! The management bus: the host's path to device firmware.
//!
//! On the real testbed the tools send raw Ethernet frames carrying MMEs to
//! the PLC adapter they are plugged into. Here the "Ethernet" is an
//! in-process router over the shared device table: requests are routed by
//! the destination MAC of the MME header, and the device's raw confirm
//! bytes are returned. The wire format is real on both legs — the tools
//! exercise the exact encodings the report documents.

use crate::device::Device;
use parking_lot::Mutex;
use plc_core::addr::MacAddr;
use plc_core::error::{Error, Result};
use plc_core::mme::MmeHeader;
use plc_faults::{MmeFate, MmeFaults};
use std::sync::Arc;

/// Shared handle to the devices on the strip.
pub type DeviceTable = Arc<Mutex<Vec<Device>>>;

/// Shared handle to a management-bus fault injector.
pub type SharedMmeFaults = Arc<Mutex<MmeFaults>>;

/// The management bus. Cheap to clone; all clones see the same devices
/// (and, when fault injection is on, the same injector — the fate stream
/// is one per bus, not one per clone).
#[derive(Clone)]
pub struct MgmtBus {
    devices: DeviceTable,
    /// The measurement host's MAC (source address of tool requests).
    host: MacAddr,
    faults: Option<SharedMmeFaults>,
}

impl MgmtBus {
    /// A bus over an existing device table.
    pub fn new(devices: DeviceTable, host: MacAddr) -> Self {
        MgmtBus {
            devices,
            host,
            faults: None,
        }
    }

    /// Inject management-transaction faults: every [`send`](MgmtBus::send)
    /// and [`collect_indications`](MgmtBus::collect_indications) first
    /// asks the injector for a fate. Lost legs surface as
    /// [`Error::Timeout`] after the plan's timeout, which
    /// [`Error::is_retryable`] marks for the retrying tools.
    pub fn with_faults(mut self, faults: SharedMmeFaults) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The measurement host's MAC address.
    pub fn host_mac(&self) -> MacAddr {
        self.host
    }

    /// Route one decoded request to its device (the fault-free path).
    fn route(&self, header: &MmeHeader, raw: &[u8]) -> Result<Vec<u8>> {
        let mut devices = self.devices.lock();
        let dev = devices
            .iter_mut()
            .find(|d| d.mac() == header.oda)
            .ok_or_else(|| Error::invalid_config(format!("no device with MAC {}", header.oda)))?;
        dev.handle_mme(raw)
    }

    /// Send one raw MME request; returns the device's raw confirm.
    ///
    /// Under fault injection a transaction can time out with the request
    /// never reaching the device, or — the nasty case — time out *after*
    /// the device applied its side effects (the confirm leg was lost, or
    /// the confirm was delayed past the client timeout). Callers must
    /// treat a timeout as "effect unknown", which is safe here because
    /// every ampstat/faifa operation is idempotent.
    pub fn send(&self, raw: &[u8]) -> Result<Vec<u8>> {
        // Garbage is rejected before fate is consumed: a malformed frame
        // never reaches the wire, so it must not advance the fate stream.
        let header = MmeHeader::decode(raw)?;
        let fate = self.faults.as_ref().map(|f| f.lock().next_fate());
        match fate {
            None => self.route(&header, raw),
            Some(MmeFate::RequestLost) => Err(self.timeout_for(&header)),
            Some(MmeFate::ConfirmLost) => {
                // The device processed the request; only the reply died.
                let _ = self.route(&header, raw)?;
                Err(self.timeout_for(&header))
            }
            Some(MmeFate::Deliver { delay_us }) => {
                let reply = self.route(&header, raw)?;
                let timeout_us = self
                    .faults
                    .as_ref()
                    .map(|f| f.lock().timeout_us())
                    .unwrap_or(f64::INFINITY);
                if delay_us > timeout_us {
                    // Delivered, but after the client stopped listening.
                    Err(self.timeout_for(&header))
                } else {
                    Ok(reply)
                }
            }
        }
    }

    fn timeout_for(&self, header: &MmeHeader) -> Error {
        let after = self
            .faults
            .as_ref()
            .map(|f| f.lock().timeout_us())
            .unwrap_or(0.0);
        Error::timeout(
            format!("MME 0x{:04X} to {}", header.mmtype, header.oda),
            after,
        )
    }

    /// Collect (and drain) the sniffer indications of the device at `mac`,
    /// as raw indication MMEs addressed to the host.
    ///
    /// Under fault injection the *poll* can fail (any non-clean fate times
    /// out), but the device's capture buffer is left untouched, so a retry
    /// collects everything — indications are device-buffered until a poll
    /// actually completes.
    pub fn collect_indications(&self, mac: MacAddr) -> Result<Vec<Vec<u8>>> {
        if let Some(f) = &self.faults {
            let (fate, after) = {
                let mut f = f.lock();
                (f.next_fate(), f.timeout_us())
            };
            if !matches!(fate, MmeFate::Deliver { delay_us } if delay_us <= after) {
                return Err(Error::timeout(format!("sniffer poll of {mac}"), after));
            }
        }
        let mut devices = self.devices.lock();
        let dev = devices
            .iter_mut()
            .find(|d| d.mac() == mac)
            .ok_or_else(|| Error::invalid_config(format!("no device with MAC {mac}")))?;
        Ok(dev.capture_indications(self.host))
    }

    /// Run a closure with shared access to a device (tests, assertions).
    pub fn with_device<R>(&self, mac: MacAddr, f: impl FnOnce(&Device) -> R) -> Result<R> {
        let devices = self.devices.lock();
        let dev = devices
            .iter()
            .find(|d| d.mac() == mac)
            .ok_or_else(|| Error::invalid_config(format!("no device with MAC {mac}")))?;
        Ok(f(dev))
    }

    /// MAC addresses of all devices on the bus.
    pub fn device_macs(&self) -> Vec<MacAddr> {
        self.devices.lock().iter().map(|d| d.mac()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_core::addr::Tei;
    use plc_core::mme::{AmpStatReq, Direction, MmeHeader, StatsControl, MMTYPE_STATS};
    use plc_core::priority::Priority;

    fn setup() -> MgmtBus {
        let devices: DeviceTable = Arc::new(Mutex::new(vec![
            Device::new(MacAddr::station(0), Tei::station(0)),
            Device::new(MacAddr::station(1), Tei::station(1)),
        ]));
        MgmtBus::new(devices, MacAddr([0x02, 0xB0, 0x57, 0, 0, 1]))
    }

    #[test]
    fn routes_by_destination_mac() {
        let bus = setup();
        let req = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: MacAddr::station(9),
        };
        for target in [MacAddr::station(0), MacAddr::station(1)] {
            let raw = req.encode(&MmeHeader::request(target, bus.host_mac(), MMTYPE_STATS));
            let reply = bus.send(&raw).unwrap();
            let h = MmeHeader::decode(&reply).unwrap();
            assert_eq!(h.osa, target, "confirm comes from the queried device");
            assert_eq!(h.oda, bus.host_mac());
        }
    }

    #[test]
    fn unknown_device_errors() {
        let bus = setup();
        let req = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: MacAddr::station(9),
        };
        let raw = req.encode(&MmeHeader::request(
            MacAddr::station(77),
            bus.host_mac(),
            MMTYPE_STATS,
        ));
        assert!(bus.send(&raw).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        let bus = setup();
        assert!(bus.send(&[0u8; 4]).is_err());
    }

    #[test]
    fn clones_share_state() {
        let bus = setup();
        let bus2 = bus.clone();
        assert_eq!(bus.device_macs(), bus2.device_macs());
        assert_eq!(bus.device_macs().len(), 2);
    }

    #[test]
    fn with_device_reads_state() {
        let bus = setup();
        let tei = bus.with_device(MacAddr::station(1), |d| d.tei()).unwrap();
        assert_eq!(tei, Tei::station(1));
        assert!(bus.with_device(MacAddr::station(9), |_| ()).is_err());
    }

    fn read_req(bus: &MgmtBus, target: MacAddr) -> Vec<u8> {
        AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: MacAddr::station(9),
        }
        .encode(&MmeHeader::request(target, bus.host_mac(), MMTYPE_STATS))
    }

    #[test]
    fn benign_fault_plan_changes_nothing() {
        let bus = setup();
        let faults = Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(
            &plc_faults::FaultPlan::default(),
        )));
        let faulty = bus.clone().with_faults(faults);
        let raw = read_req(&bus, MacAddr::station(0));
        assert_eq!(bus.send(&raw).unwrap(), faulty.send(&raw).unwrap());
    }

    #[test]
    fn total_loss_always_times_out_retryably() {
        let plan = plc_faults::FaultPlan::builder()
            .seed(1)
            .mme_loss(1.0)
            .build();
        let bus = setup().with_faults(Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(
            &plan,
        ))));
        let raw = read_req(&bus, MacAddr::station(0));
        for _ in 0..20 {
            let err = bus.send(&raw).unwrap_err();
            assert!(err.is_retryable(), "loss must look like a timeout: {err}");
        }
    }

    #[test]
    fn garbage_does_not_consume_a_fate() {
        let plan = plc_faults::FaultPlan::builder()
            .seed(2)
            .mme_loss(0.5)
            .build();
        let faults = Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(&plan)));
        let bus = setup().with_faults(faults.clone());
        // Malformed frames are rejected before the injector is asked…
        assert!(!bus.send(&[0u8; 4]).unwrap_err().is_retryable());
        // …so the fate stream replays exactly against a fresh injector.
        let mut reference = plc_faults::MmeFaults::from_plan(&plan);
        let raw = read_req(&bus, MacAddr::station(0));
        for _ in 0..50 {
            let expect_ok = matches!(reference.next_fate(), plc_faults::MmeFate::Deliver { .. });
            assert_eq!(bus.send(&raw).is_ok(), expect_ok);
        }
    }

    #[test]
    fn confirm_loss_applies_device_side_effects() {
        // Find a seed whose first fate is ConfirmLost, deterministically.
        let plan_for = |seed| {
            plc_faults::FaultPlan::builder()
                .seed(seed)
                .mme_loss(0.5)
                .build()
        };
        let seed = (0..200u64)
            .find(|&s| {
                matches!(
                    plc_faults::MmeFaults::from_plan(&plan_for(s)).next_fate(),
                    plc_faults::MmeFate::ConfirmLost
                )
            })
            .expect("some seed opens with ConfirmLost");
        let clean = setup();
        // Record activity, then send a reset whose confirm gets lost.
        {
            let devices = clean.devices.clone();
            devices.lock()[0].record_tx_ack(MacAddr::station(9), Priority::CA1, false);
        }
        let faulty =
            clean
                .clone()
                .with_faults(Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(
                    &plan_for(seed),
                ))));
        let reset = AmpStatReq {
            control: StatsControl::Reset,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: MacAddr::station(9),
        }
        .encode(&MmeHeader::request(
            MacAddr::station(0),
            clean.host_mac(),
            MMTYPE_STATS,
        ));
        let err = faulty.send(&reset).unwrap_err();
        assert!(err.is_retryable());
        // The tool saw a timeout, but the device really did reset.
        let reply = clean.send(&read_req(&clean, MacAddr::station(0))).unwrap();
        let cnf = plc_core::mme::AmpStatCnf::decode(&reply).unwrap();
        assert_eq!(cnf, plc_core::mme::AmpStatCnf::default());
    }

    #[test]
    fn delay_beyond_timeout_is_a_timeout() {
        let plan = plc_faults::FaultPlan::builder()
            .seed(3)
            .mme_delay(1.0, 5000.0)
            .mme_timeout_us(1000.0)
            .build();
        let bus = setup().with_faults(Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(
            &plan,
        ))));
        let raw = read_req(&bus, MacAddr::station(0));
        let err = bus.send(&raw).unwrap_err();
        assert!(err.is_retryable());
        assert!(err.to_string().contains("1000 us"), "{err}");
    }

    #[test]
    fn faulty_poll_leaves_captures_buffered() {
        use plc_core::frame::SofDelimiter;
        let plan = plc_faults::FaultPlan::builder()
            .seed(4)
            .mme_loss(1.0)
            .build();
        let clean = setup();
        let faulty =
            clean
                .clone()
                .with_faults(Arc::new(Mutex::new(plc_faults::MmeFaults::from_plan(
                    &plan,
                ))));
        {
            let mut devices = clean.devices.lock();
            let raw_on = plc_core::mme::SnifferReq { enable: true }.encode(&MmeHeader::request(
                MacAddr::station(0),
                clean.host_mac(),
                plc_core::mme::MMTYPE_SNIFFER,
            ));
            devices[0].handle_mme(&raw_on).unwrap();
            devices[0].sense_sof(
                1.0,
                SofDelimiter {
                    src: Tei(2),
                    dst: Tei(1),
                    priority: Priority::CA1,
                    mpdu_cnt: 0,
                    num_pbs: 4,
                    fl_units: 1602,
                },
            );
        }
        assert!(faulty.collect_indications(MacAddr::station(0)).is_err());
        // The failed poll did not drain the buffer.
        let frames = clean.collect_indications(MacAddr::station(0)).unwrap();
        assert_eq!(frames.len(), 1);
    }
}
