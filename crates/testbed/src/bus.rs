//! The management bus: the host's path to device firmware.
//!
//! On the real testbed the tools send raw Ethernet frames carrying MMEs to
//! the PLC adapter they are plugged into. Here the "Ethernet" is an
//! in-process router over the shared device table: requests are routed by
//! the destination MAC of the MME header, and the device's raw confirm
//! bytes are returned. The wire format is real on both legs — the tools
//! exercise the exact encodings the report documents.

use crate::device::Device;
use parking_lot::Mutex;
use plc_core::addr::MacAddr;
use plc_core::error::{Error, Result};
use plc_core::mme::MmeHeader;
use std::sync::Arc;

/// Shared handle to the devices on the strip.
pub type DeviceTable = Arc<Mutex<Vec<Device>>>;

/// The management bus. Cheap to clone; all clones see the same devices.
#[derive(Clone)]
pub struct MgmtBus {
    devices: DeviceTable,
    /// The measurement host's MAC (source address of tool requests).
    host: MacAddr,
}

impl MgmtBus {
    /// A bus over an existing device table.
    pub fn new(devices: DeviceTable, host: MacAddr) -> Self {
        MgmtBus { devices, host }
    }

    /// The measurement host's MAC address.
    pub fn host_mac(&self) -> MacAddr {
        self.host
    }

    /// Send one raw MME request; returns the device's raw confirm.
    pub fn send(&self, raw: &[u8]) -> Result<Vec<u8>> {
        let header = MmeHeader::decode(raw)?;
        let mut devices = self.devices.lock();
        let dev = devices
            .iter_mut()
            .find(|d| d.mac() == header.oda)
            .ok_or_else(|| Error::invalid_config(format!("no device with MAC {}", header.oda)))?;
        dev.handle_mme(raw)
    }

    /// Collect (and drain) the sniffer indications of the device at `mac`,
    /// as raw indication MMEs addressed to the host.
    pub fn collect_indications(&self, mac: MacAddr) -> Result<Vec<Vec<u8>>> {
        let mut devices = self.devices.lock();
        let dev = devices
            .iter_mut()
            .find(|d| d.mac() == mac)
            .ok_or_else(|| Error::invalid_config(format!("no device with MAC {mac}")))?;
        Ok(dev.capture_indications(self.host))
    }

    /// Run a closure with shared access to a device (tests, assertions).
    pub fn with_device<R>(&self, mac: MacAddr, f: impl FnOnce(&Device) -> R) -> Result<R> {
        let devices = self.devices.lock();
        let dev = devices
            .iter()
            .find(|d| d.mac() == mac)
            .ok_or_else(|| Error::invalid_config(format!("no device with MAC {mac}")))?;
        Ok(f(dev))
    }

    /// MAC addresses of all devices on the bus.
    pub fn device_macs(&self) -> Vec<MacAddr> {
        self.devices.lock().iter().map(|d| d.mac()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_core::addr::Tei;
    use plc_core::mme::{AmpStatReq, Direction, MmeHeader, StatsControl, MMTYPE_STATS};
    use plc_core::priority::Priority;

    fn setup() -> MgmtBus {
        let devices: DeviceTable = Arc::new(Mutex::new(vec![
            Device::new(MacAddr::station(0), Tei::station(0)),
            Device::new(MacAddr::station(1), Tei::station(1)),
        ]));
        MgmtBus::new(devices, MacAddr([0x02, 0xB0, 0x57, 0, 0, 1]))
    }

    #[test]
    fn routes_by_destination_mac() {
        let bus = setup();
        let req = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: MacAddr::station(9),
        };
        for target in [MacAddr::station(0), MacAddr::station(1)] {
            let raw = req.encode(&MmeHeader::request(target, bus.host_mac(), MMTYPE_STATS));
            let reply = bus.send(&raw).unwrap();
            let h = MmeHeader::decode(&reply).unwrap();
            assert_eq!(h.osa, target, "confirm comes from the queried device");
            assert_eq!(h.oda, bus.host_mac());
        }
    }

    #[test]
    fn unknown_device_errors() {
        let bus = setup();
        let req = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: MacAddr::station(9),
        };
        let raw = req.encode(&MmeHeader::request(
            MacAddr::station(77),
            bus.host_mac(),
            MMTYPE_STATS,
        ));
        assert!(bus.send(&raw).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        let bus = setup();
        assert!(bus.send(&[0u8; 4]).is_err());
    }

    #[test]
    fn clones_share_state() {
        let bus = setup();
        let bus2 = bus.clone();
        assert_eq!(bus.device_macs(), bus2.device_macs());
        assert_eq!(bus.device_macs().len(), 2);
    }

    #[test]
    fn with_device_reads_state() {
        let bus = setup();
        let tei = bus.with_device(MacAddr::station(1), |d| d.tei()).unwrap();
        assert_eq!(tei, Tei::station(1));
        assert!(bus.with_device(MacAddr::station(9), |_| ()).is_err());
    }
}
