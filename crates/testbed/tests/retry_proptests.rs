//! Property tests of the resilient measurement path (ISSUE 4): for any
//! MME loss rate the retry budget can absorb, a retrying ampstat client
//! on a faulty bus reads **exactly** the clean-bus counters — retries
//! must repair the transport without perturbing the measurement.

use parking_lot::Mutex;
use plc_core::addr::{MacAddr, Tei};
use plc_core::mme::Direction;
use plc_core::priority::Priority;
use plc_faults::{FaultPlan, MmeFaults, RetryPolicy};
use plc_testbed::bus::{DeviceTable, MgmtBus};
use plc_testbed::device::Device;
use plc_testbed::AmpStat;
use proptest::prelude::*;
use std::sync::Arc;

const HOST: MacAddr = MacAddr([0x02, 0xB0, 0x57, 0, 0, 1]);

/// Two devices with pre-populated firmware counters on station 0 — no
/// engine run needed, the property is about the management path only.
fn table(acks: u64, collisions: u64) -> DeviceTable {
    let mut d0 = Device::new(MacAddr::station(0), Tei::station(0));
    let peer = MacAddr::station(1);
    for i in 0..acks {
        d0.record_tx_ack(peer, Priority::CA1, i < collisions);
    }
    Arc::new(Mutex::new(vec![
        d0,
        Device::new(MacAddr::station(1), Tei::station(1)),
    ]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lossy_ampstat_converges_to_exact_clean_counters(
        loss in 0.0f64..0.4,
        delay_prob in 0.0f64..0.2,
        fault_seed in any::<u64>(),
        jitter_seed in any::<u64>(),
        acks in 1u64..500,
        collided_frac in 0.0f64..1.0,
    ) {
        let collisions = (acks as f64 * collided_frac) as u64;
        let devices = table(acks, collisions);
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);

        let clean = AmpStat::new(MgmtBus::new(devices.clone(), HOST));
        let truth = clean.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        prop_assert_eq!(truth.acked, acks);
        prop_assert_eq!(truth.collided, collisions);

        // Delays beyond the timeout count as losses too; keep them short
        // of the default 1000 µs timeout half the time via the plan's
        // default delay.
        let plan = FaultPlan::builder()
            .seed(fault_seed)
            .mme_loss(loss)
            .mme_delay(delay_prob, 2000.0)
            .build();
        let faults = Arc::new(Mutex::new(MmeFaults::from_plan(&plan)));
        let lossy_bus = MgmtBus::new(devices, HOST).with_faults(faults);

        // 64 attempts: even at the worst sampled fault rates the odds of
        // a transaction exhausting the budget are ~1e-10.
        let mut retry = RetryPolicy::with_attempts(64);
        retry.jitter_seed = jitter_seed;
        let tool = AmpStat::new(lossy_bus).with_retry(retry);
        for _ in 0..4 {
            let got = tool.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
            prop_assert_eq!(got, truth, "retried read must equal the clean read");
        }
    }

    #[test]
    fn reset_through_lossy_bus_is_idempotent(
        loss in 0.0f64..0.4,
        fault_seed in any::<u64>(),
        acks in 1u64..200,
    ) {
        let devices = table(acks, 0);
        let dev = MacAddr::station(0);
        let peer = MacAddr::station(1);
        let plan = FaultPlan::builder().seed(fault_seed).mme_loss(loss).build();
        let faults = Arc::new(Mutex::new(MmeFaults::from_plan(&plan)));
        let tool = AmpStat::new(MgmtBus::new(devices.clone(), HOST).with_faults(faults))
            .with_retry(RetryPolicy::with_attempts(64));
        tool.reset(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        let got = tool.get(dev, peer, Priority::CA1, Direction::Tx).unwrap();
        prop_assert_eq!(got.acked, 0, "reset must land exactly once-or-more, same result");
        prop_assert_eq!(got.collided, 0);
    }
}
