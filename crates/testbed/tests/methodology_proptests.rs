//! Property tests over the emulated testbed: for arbitrary station
//! counts, seeds and firmware interactions, the measurement methodology's
//! invariants hold and the MME layer stays wire-safe.

use plc_core::addr::{MacAddr, Tei};
use plc_core::mme::{AmpStatReq, Direction, MmeHeader, StatsControl, MMTYPE_STATS};
use plc_core::priority::Priority;
use plc_core::units::Microseconds;
use plc_testbed::device::Device;
use plc_testbed::tools::{AmpStat, Faifa};
use plc_testbed::{CollisionExperiment, PowerStrip, TestbedConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The §3.2 arithmetic reconciles for any (n, seed): sums match the
    /// per-station counters, Cᵢ ≤ Aᵢ per station (selective ACKs count
    /// collided frames inside acked), ratios in range.
    #[test]
    fn ampstat_methodology_reconciles(n in 1usize..6, seed in any::<u64>()) {
        let out = CollisionExperiment {
            duration: Microseconds::from_secs(3.0),
            ..CollisionExperiment::paper(n, seed)
        }
        .run()
        .unwrap();
        prop_assert_eq!(out.per_station.len(), n);
        for s in &out.per_station {
            prop_assert!(s.collided <= s.acked, "Cᵢ ⊆ Aᵢ: {s:?}");
        }
        prop_assert_eq!(out.sum_acked, out.per_station.iter().map(|s| s.acked).sum::<u64>());
        prop_assert!((0.0..=1.0).contains(&out.collision_probability));
    }

    /// Device firmware counter semantics under arbitrary ack sequences:
    /// acked = clean + collided, counters monotone, per-link isolation.
    #[test]
    fn firmware_counters_are_consistent(ops in proptest::collection::vec((0u8..2, 0u8..4, any::<bool>()), 0..200)) {
        let mut d = Device::new(MacAddr::station(0), Tei::station(0));
        let peers = [MacAddr::station(10), MacAddr::station(11)];
        let mut expect = std::collections::HashMap::new();
        for (peer_idx, prio_bits, collided) in ops {
            let peer = peers[peer_idx as usize];
            let priority = Priority::from_bits(prio_bits).unwrap();
            d.record_tx_ack(peer, priority, collided);
            let e = expect.entry((peer, priority)).or_insert((0u64, 0u64));
            e.0 += 1;
            if collided {
                e.1 += 1;
            }
        }
        for ((peer, priority), (acked, collided)) in expect {
            let s = d.stats(&plc_testbed::StatKey { peer, priority, direction: plc_core::mme::Direction::Tx });
            prop_assert_eq!(s.acked, acked);
            prop_assert_eq!(s.collided, collided);
        }
    }

    /// The full MME round trip (reset → traffic → read → re-read) through
    /// the real wire path: reads are stable (non-destructive), resets
    /// clear, and re-running with the same seed reproduces the counters.
    #[test]
    fn mme_round_trip_is_lossless(n in 1usize..4, seed in any::<u64>()) {
        let cfg = TestbedConfig {
            n_stations: n,
            duration: Microseconds::from_secs(1.0),
            seed,
            mme_rate_per_us: 0.0,
            ..Default::default()
        };
        let mut strip = PowerStrip::new(cfg.clone());
        let dst_mac = strip.destination_mac();
        let tool = AmpStat::new(strip.bus());
        // Reset through the raw wire encoding (not the tool helper), to
        // exercise the byte path end to end.
        let raw_reset = AmpStatReq {
            control: StatsControl::Reset,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: dst_mac,
        }
        .encode(&MmeHeader::request(strip.station_mac(0), strip.bus().host_mac(), MMTYPE_STATS));
        strip.bus().send(&raw_reset).unwrap();

        strip.run_test();
        let first = tool.get(strip.station_mac(0), dst_mac, Priority::CA1, Direction::Tx).unwrap();
        let second = tool.get(strip.station_mac(0), dst_mac, Priority::CA1, Direction::Tx).unwrap();
        prop_assert_eq!(first, second, "reads must not disturb counters");
        prop_assert!(first.collided <= first.acked);

        // Same configuration, fresh strip: identical measurement.
        let mut strip2 = PowerStrip::new(cfg);
        strip2.run_test();
        let tool2 = AmpStat::new(strip2.bus());
        let replay = tool2.get(strip2.station_mac(0), dst_mac, Priority::CA1, Direction::Tx).unwrap();
        prop_assert_eq!(replay, first, "deterministic given (config, seed)");
    }

    /// Sniffer captures survive the full encode→collect→decode path and
    /// contain only well-formed delimiters.
    #[test]
    fn sniffer_path_is_wire_safe(n in 1usize..4, seed in any::<u64>()) {
        let mut strip = PowerStrip::new(TestbedConfig {
            n_stations: n,
            duration: Microseconds::from_secs(2.0),
            seed,
            ..Default::default()
        });
        let faifa = Faifa::new(strip.bus());
        let d = strip.destination_mac();
        faifa.set_sniffer(d, true).unwrap();
        strip.run_test();
        let caps = faifa.collect(d).unwrap();
        prop_assert!(!caps.is_empty());
        for ind in &caps {
            prop_assert!(ind.timestamp_us >= 0.0);
            prop_assert!(ind.sof.src.is_station());
            prop_assert!((ind.sof.mpdu_cnt as usize) < plc_core::timing::MAX_BURST);
        }
        // Timestamps non-decreasing.
        prop_assert!(caps.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }
}
