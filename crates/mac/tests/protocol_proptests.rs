//! Property tests over the protocol state machines: for arbitrary legal
//! event scripts, the invariants of both protocols hold and the
//! [`AnyBackoff`] adapter behaves identically to its inner process.

use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_mac::{AnyBackoff, Backoff1901, BackoffDcf, BackoffProcess};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Drive a process with a script of channel events. Returns the sequence
/// of snapshots taken after each event.
fn drive<P: BackoffProcess>(
    p: &mut P,
    rng: &mut SmallRng,
    script: &[u8],
) -> Vec<plc_mac::process::BackoffSnapshot> {
    let mut out = Vec::with_capacity(script.len());
    for &step in script {
        if p.wants_tx() {
            if step % 2 == 0 {
                p.on_tx_success(rng);
            } else {
                p.on_tx_failure(rng);
            }
        } else {
            match step % 3 {
                0 | 1 => p.on_idle_slot(rng),
                _ => p.on_busy(rng),
            }
        }
        out.push(p.snapshot());
    }
    out
}

proptest! {
    /// The adapter enum is transparent: same seed, same script → the
    /// wrapped process and the bare process produce identical snapshot
    /// sequences.
    #[test]
    fn any_backoff_is_transparent_1901(seed in any::<u64>(), script in proptest::collection::vec(any::<u8>(), 1..200)) {
        let mut rng1 = SmallRng::seed_from_u64(seed);
        let mut bare = Backoff1901::default_ca1(&mut rng1);
        let bare_trace = drive(&mut bare, &mut rng1, &script);

        let mut rng2 = SmallRng::seed_from_u64(seed);
        let mut wrapped: AnyBackoff = Backoff1901::default_ca1(&mut rng2).into();
        let wrapped_trace = drive(&mut wrapped, &mut rng2, &script);

        prop_assert_eq!(bare_trace, wrapped_trace);
    }

    #[test]
    fn any_backoff_is_transparent_dcf(seed in any::<u64>(), script in proptest::collection::vec(any::<u8>(), 1..200)) {
        let mut rng1 = SmallRng::seed_from_u64(seed);
        let mut bare = BackoffDcf::classic(&mut rng1);
        let bare_trace = drive(&mut bare, &mut rng1, &script);

        let mut rng2 = SmallRng::seed_from_u64(seed);
        let mut wrapped: AnyBackoff = BackoffDcf::classic(&mut rng2).into();
        let wrapped_trace = drive(&mut wrapped, &mut rng2, &script);

        prop_assert_eq!(bare_trace, wrapped_trace);
    }

    /// DCF invariants: BC below CW, CW follows the doubling table indexed
    /// by the snapshot's stage, busy slots change nothing.
    #[test]
    fn dcf_invariants(seed in any::<u64>(), script in proptest::collection::vec(any::<u8>(), 1..300)) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = BackoffDcf::classic(&mut rng);
        for &step in &script {
            let before = p.snapshot();
            if p.wants_tx() {
                if step % 2 == 0 {
                    p.on_tx_success(&mut rng);
                    prop_assert_eq!(p.stage(), 0, "success resets the stage");
                } else {
                    p.on_tx_failure(&mut rng);
                    prop_assert_eq!(
                        p.stage(),
                        (before.stage + 1).min(5),
                        "failure advances one stage, saturating"
                    );
                }
            } else if step % 3 == 2 {
                p.on_busy(&mut rng);
                prop_assert_eq!(p.snapshot(), before, "busy freezes DCF entirely");
            } else {
                p.on_idle_slot(&mut rng);
                prop_assert_eq!(p.bc(), before.bc - 1);
            }
            prop_assert!(p.bc() < p.cw());
            prop_assert_eq!(p.cw(), 16 << p.stage());
        }
    }

    /// 1901 invariant: the deferral counter never exceeds the initial
    /// value of the stage in effect, and jumps preserve the table.
    #[test]
    fn dc_bounded_by_stage_initial(seed in any::<u64>(), script in proptest::collection::vec(any::<u8>(), 1..300)) {
        let cfg = CsmaConfig::ieee1901_ca01();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Backoff1901::new(cfg.clone(), &mut rng);
        for &step in &script {
            if p.wants_tx() {
                if step % 2 == 0 { p.on_tx_success(&mut rng) } else { p.on_tx_failure(&mut rng) }
            } else if step % 3 == 2 {
                p.on_busy(&mut rng);
            } else {
                p.on_idle_slot(&mut rng);
            }
            let stage = p.stage();
            let d_init = cfg.stage(stage).dc;
            if d_init != DC_DISABLED {
                prop_assert!(p.dc().unwrap() <= d_init, "DC above its initial value");
            }
            prop_assert_eq!(p.cw(), cfg.stage(stage).cw);
        }
    }

    /// Reset always lands at stage 0 with a legal draw, for any config.
    #[test]
    fn reset_restores_stage_zero(seed in any::<u64>(), failures in 0usize..10) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Backoff1901::default_ca1(&mut rng);
        for _ in 0..failures {
            p.on_tx_failure(&mut rng);
        }
        p.reset(&mut rng);
        prop_assert_eq!(p.stage(), 0);
        prop_assert!(p.bc() < 8);
        prop_assert_eq!(p.snapshot().bpc, 0);
    }
}
