//! The [`BackoffProcess`] trait: the slot-event interface between a
//! contention state machine and a simulation engine.
//!
//! The engines in `plc-sim` are generic over this trait, which is what lets
//! a single engine run IEEE 1901, 802.11 DCF, and the ablation variants
//! (1901 without deferral counter, constant-window) under identical channel
//! dynamics — the comparison the paper's evaluation rests on.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Which protocol family a process implements; used for labelling traces
/// and experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// IEEE 1901 (HomePlug AV) CSMA/CA with deferral counter.
    Ieee1901,
    /// IEEE 802.11 DCF-style CSMA/CA (freeze on busy, no deferral counter).
    Dcf80211,
}

impl core::fmt::Display for Protocol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Protocol::Ieee1901 => write!(f, "IEEE 1901"),
            Protocol::Dcf80211 => write!(f, "802.11 DCF"),
        }
    }
}

/// A point-in-time snapshot of a backoff process's counters, used by the
/// trace machinery to reproduce Figure 1 of the paper (the two-station
/// CW/DC/BC time evolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffSnapshot {
    /// Backoff stage currently in effect (0-based, saturated at the last).
    pub stage: usize,
    /// Contention window in effect (`CW_i`).
    pub cw: u32,
    /// Current backoff counter value.
    pub bc: u32,
    /// Current deferral counter value; `None` when the protocol has no
    /// deferral counter (802.11) or it is disabled at this stage.
    pub dc: Option<u32>,
    /// Backoff procedure counter: number of stage entries since the last
    /// successful transmission (the standard's BPC).
    pub bpc: u32,
}

/// One row of the per-stage parameter table in a [`SoaView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoaStage {
    /// Contention window at this stage: redraws pick BC uniformly from
    /// `0..cw` (one `gen_range` call, i.e. one RNG word).
    pub cw: u32,
    /// Initial deferral counter at this stage; `u32::MAX` disables the
    /// deferral counter (802.11 rows always use the disabled value).
    pub dc: u32,
}

/// Live counters exported in a [`SoaView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoaState {
    /// Current backoff counter.
    pub bc: u32,
    /// Current deferral counter (`u32::MAX` when disabled or absent).
    pub dc: u32,
    /// Raw stage-entry counter: 1901's BPC *before* the reporting
    /// adjustment (`snapshot().bpc + 1` after the first draw), or the
    /// 802.11 retry count.
    pub bpc: u32,
    /// Stage currently in effect (index into the stage table).
    pub stage: u32,
}

/// A struct-of-arrays export of a backoff process: the per-stage parameter
/// table plus the live counters, in exactly the representation an engine
/// needs to host contention state in parallel arrays and replay this
/// process's RNG draw sequence bit-identically (see `plc-sim`'s
/// `ContentionCore`).
///
/// A process that returns a view guarantees its entire future behaviour is
/// determined by [`Protocol`] slot semantics over these counters:
///
/// * redraws consume exactly one `gen_range(0..cw)` call;
/// * 1901 busy slots redraw iff `dc == 0`, else decrement BC (and DC when
///   enabled); 802.11 busy slots freeze;
/// * success/reset re-enter stage 0; failure advances the stage
///   (1901: via BPC saturating increment; 802.11: saturated at the last
///   stage, with a saturating retry count).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoaView {
    /// Which protocol's slot semantics the counters follow.
    pub protocol: Protocol,
    /// Per-stage contention parameters, in stage order.
    pub stages: Vec<SoaStage>,
    /// Live counter state.
    pub state: SoaState,
}

/// A CSMA/CA contention state machine, driven by slot events.
///
/// # Contract
///
/// * The engine must consult [`wants_tx`](BackoffProcess::wants_tx) at the
///   top of every slot. If it returns `true` the station transmits in that
///   slot and the engine must then call exactly one of
///   [`on_tx_success`](BackoffProcess::on_tx_success) /
///   [`on_tx_failure`](BackoffProcess::on_tx_failure).
/// * If it returns `false`, the engine must call exactly one of
///   [`on_idle_slot`](BackoffProcess::on_idle_slot) (no station transmitted)
///   or [`on_busy`](BackoffProcess::on_busy) (some other station
///   transmitted — the station *sensed the medium busy*).
/// * `on_busy` is only legal mid-countdown (`wants_tx() == false`). A
///   station that has counted down to `BC == 0` but finds the medium
///   busy — which can only happen under partial hearing, e.g. the
///   multi-domain coordinator's cross-network sensing — must *hold* its
///   pending transmission without any process call until the medium
///   frees; implementations may panic on a contract violation.
/// * After any event, `wants_tx` reflects the next slot's intention.
///
/// All state transitions are deterministic given the RNG stream.
pub trait BackoffProcess {
    /// True when `BC == 0`: the station attempts a transmission in the
    /// current slot.
    fn wants_tx(&self) -> bool;

    /// The medium was idle for one contention slot.
    fn on_idle_slot(&mut self, rng: &mut dyn RngCore);

    /// The station sensed the medium busy (another station's transmission
    /// occupied the slot). For 1901 this decrements BC *and* DC, possibly
    /// jumping to the next backoff stage; for 802.11 the backoff freezes.
    fn on_busy(&mut self, rng: &mut dyn RngCore);

    /// The station's own transmission was acknowledged: return to backoff
    /// stage 0.
    fn on_tx_success(&mut self, rng: &mut dyn RngCore);

    /// The station's own transmission collided: advance the backoff stage.
    fn on_tx_failure(&mut self, rng: &mut dyn RngCore);

    /// Start a fresh backoff for a new head-of-line frame: return to stage
    /// 0 and redraw BC — the standard's "upon the arrival of a new packet,
    /// a transmitting station enters backoff stage 0". Also used after a
    /// retry-limit drop.
    ///
    /// The default implementation reuses the success transition, which has
    /// exactly these semantics in both implemented protocols.
    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.on_tx_success(rng);
    }

    /// How many consecutive idle slots this process can absorb as pure
    /// `BC` decrements — without consuming RNG draws, touching the
    /// deferral counter, or changing any other state. Engines use this to
    /// fast-forward runs of idle slots in one jump; `None` (the default)
    /// opts out and forces per-slot stepping.
    ///
    /// # Contract
    ///
    /// `Some(bc)` must report the *current* backoff counter, with
    /// `wants_tx()` equivalent to `bc == 0` — engines cache `idle_skip`
    /// values across a step to both bound the fast-forward jump and
    /// predict the next slot's transmitter set without rescanning. A
    /// process whose transmit decision involves more than `BC == 0` must
    /// return `None`.
    ///
    /// Both implemented protocols return `Some(BC)`: in 1901 the DC only
    /// moves on *busy* slots, and in 802.11 idle slots are plain
    /// countdowns, so `BC` idle slots in a row are fully predictable.
    fn idle_skip(&self) -> Option<u32> {
        None
    }

    /// Absorb `n` idle slots at once. Must be equivalent to `n` calls to
    /// [`on_idle_slot`](BackoffProcess::on_idle_slot); engines only call
    /// it with `n ≤` the last [`idle_skip`](BackoffProcess::idle_skip)
    /// value, and only when that returned `Some`.
    fn consume_idle_slots(&mut self, n: u32) {
        debug_assert!(
            n == 0,
            "consume_idle_slots used on a process that opted out of idle_skip"
        );
    }

    /// Export the full contention state as a [`SoaView`] so an engine can
    /// move it into parallel arrays. `None` (the default) opts out and
    /// keeps the engine on the per-object slot-event path.
    ///
    /// # Contract
    ///
    /// A process returning `Some` asserts that the view captures *all* of
    /// its state: an engine replaying [`Protocol`] slot semantics over the
    /// exported counters — with redraws taken from the same RNG stream in
    /// the same order — produces bit-identical traces to calling the slot
    ///-event methods on the object itself.
    fn soa_view(&self) -> Option<SoaView> {
        None
    }

    /// Which protocol this process implements.
    fn protocol(&self) -> Protocol;

    /// Counter snapshot for tracing.
    fn snapshot(&self) -> BackoffSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Ieee1901.to_string(), "IEEE 1901");
        assert_eq!(Protocol::Dcf80211.to_string(), "802.11 DCF");
    }

    #[test]
    fn snapshot_is_plain_data() {
        let s = BackoffSnapshot {
            stage: 1,
            cw: 16,
            bc: 5,
            dc: Some(1),
            bpc: 2,
        };
        let t = s;
        assert_eq!(s, t);
    }
}
