//! A closed enum over the workspace's backoff processes.
//!
//! The simulation engine is generic over [`BackoffProcess`]; for scenarios
//! that mix protocols in one contention domain (e.g. the 1901-vs-802.11
//! coexistence comparison) the station set must be homogeneous in *type*
//! while heterogeneous in *protocol*. [`AnyBackoff`] is the zero-cost way
//! to do that without trait objects in the hot loop.

use crate::backoff1901::Backoff1901;
use crate::dcf::BackoffDcf;
use crate::process::{BackoffProcess, BackoffSnapshot, Protocol, SoaView};
use rand::RngCore;

/// Either of the implemented backoff processes. Dispatch is a two-arm
/// match, which the optimizer folds away in homogeneous populations.
#[derive(Debug, Clone)]
pub enum AnyBackoff {
    /// IEEE 1901 process.
    Ieee1901(Backoff1901),
    /// 802.11 DCF process.
    Dcf(BackoffDcf),
}

impl From<Backoff1901> for AnyBackoff {
    fn from(b: Backoff1901) -> Self {
        AnyBackoff::Ieee1901(b)
    }
}

impl From<BackoffDcf> for AnyBackoff {
    fn from(b: BackoffDcf) -> Self {
        AnyBackoff::Dcf(b)
    }
}

macro_rules! delegate {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            AnyBackoff::Ieee1901($b) => $e,
            AnyBackoff::Dcf($b) => $e,
        }
    };
}

impl BackoffProcess for AnyBackoff {
    fn wants_tx(&self) -> bool {
        delegate!(self, b => b.wants_tx())
    }

    fn on_idle_slot(&mut self, rng: &mut dyn RngCore) {
        delegate!(self, b => b.on_idle_slot(rng))
    }

    fn on_busy(&mut self, rng: &mut dyn RngCore) {
        delegate!(self, b => b.on_busy(rng))
    }

    fn on_tx_success(&mut self, rng: &mut dyn RngCore) {
        delegate!(self, b => b.on_tx_success(rng))
    }

    fn on_tx_failure(&mut self, rng: &mut dyn RngCore) {
        delegate!(self, b => b.on_tx_failure(rng))
    }

    fn idle_skip(&self) -> Option<u32> {
        delegate!(self, b => b.idle_skip())
    }

    fn consume_idle_slots(&mut self, n: u32) {
        delegate!(self, b => b.consume_idle_slots(n))
    }

    fn soa_view(&self) -> Option<SoaView> {
        delegate!(self, b => b.soa_view())
    }

    fn protocol(&self) -> Protocol {
        delegate!(self, b => b.protocol())
    }

    fn snapshot(&self) -> BackoffSnapshot {
        delegate!(self, b => b.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dispatches_to_inner_protocol() {
        let mut r = SmallRng::seed_from_u64(1);
        let a: AnyBackoff = Backoff1901::default_ca1(&mut r).into();
        let d: AnyBackoff = BackoffDcf::classic(&mut r).into();
        assert_eq!(a.protocol(), Protocol::Ieee1901);
        assert_eq!(d.protocol(), Protocol::Dcf80211);
        assert_eq!(a.snapshot().cw, 8);
        assert_eq!(d.snapshot().cw, 16);
    }

    #[test]
    fn events_flow_through() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut a: AnyBackoff = Backoff1901::default_ca1(&mut r).into();
        // Drive a success; the 1901 process must reset to stage 0.
        while !a.wants_tx() {
            a.on_idle_slot(&mut r);
        }
        a.on_tx_success(&mut r);
        assert_eq!(a.snapshot().stage, 0);
        assert_eq!(a.snapshot().bpc, 0);
    }
}
