//! # plc-mac — CSMA/CA backoff state machines
//!
//! This crate implements the contention logic of the paper's two protocols
//! as pure, engine-independent state machines:
//!
//! * [`Backoff1901`] — the IEEE 1901 backoff process with its three
//!   counters: backoff counter **BC**, deferral counter **DC** and backoff
//!   procedure counter **BPC**. This is the paper's central object: a 1901
//!   station can advance to the next backoff stage *without attempting a
//!   transmission* when it senses the medium busy while DC = 0.
//! * [`BackoffDcf`] — the 802.11 DCF baseline: freeze-on-busy backoff with
//!   binary-exponential contention windows and no deferral counter.
//!
//! Both implement [`BackoffProcess`], the slot-event interface consumed by
//! the engines in `plc-sim`. The state machines own no clock and perform no
//! I/O; they react to four events (idle slot, busy slot, transmission
//! success, transmission failure) and expose whether they want to transmit
//! (`BC == 0`). Determinism: all randomness comes through the caller's RNG.
//!
//! ## Semantics (faithful to the paper's reference simulator)
//!
//! On entering backoff stage *i* the station draws
//! `BC ~ U{0, …, CW_i − 1}` and sets `DC = d_i`. Then, per slot:
//!
//! * **idle slot** — `BC -= 1`;
//! * **busy slot** — if `DC == 0`, jump to the next backoff stage (redraw,
//!   `BPC += 1`) *without transmitting*; otherwise `BC -= 1, DC -= 1`
//!   (1901 decrements BC on busy slots too — unlike 802.11's freeze);
//! * **`BC == 0`** — attempt a transmission; on success return to stage 0
//!   (`BPC = 0`), on failure advance the stage (`BPC += 1`);
//! * the stage index saturates at the last entry of the table
//!   (the standard's "re-enters the last backoff stage").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod backoff1901;
pub mod dcf;
pub mod process;
pub mod retry;

pub use any::AnyBackoff;
pub use backoff1901::Backoff1901;
pub use dcf::BackoffDcf;
pub use process::{BackoffProcess, BackoffSnapshot, Protocol, SoaStage, SoaState, SoaView};
pub use retry::RetryPolicy;
