//! Retry policies.
//!
//! The paper's reference simulator assumes an **infinite retry limit**
//! ("they never discard a frame until it is successfully transmitted").
//! Real MACs bound retries and drop the frame; we model both so extension
//! experiments can quantify how a finite limit changes collision
//! probability and goodput.

use serde::{Deserialize, Serialize};

/// How many failed attempts a station tolerates before discarding a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetryPolicy {
    /// Never discard — the paper's assumption.
    Infinite,
    /// Discard after `max_attempts` failed transmission attempts and start
    /// fresh (stage 0) with the next frame.
    Limited {
        /// Maximum number of attempts (≥ 1) before the frame is dropped.
        max_attempts: u32,
    },
}

impl RetryPolicy {
    /// The 802.11 long-retry default of 7 attempts, a realistic bound.
    pub const DOT11_DEFAULT: RetryPolicy = RetryPolicy::Limited { max_attempts: 7 };

    /// Whether a frame that has already failed `attempts_so_far` times
    /// should be dropped rather than retried.
    pub fn should_drop(&self, attempts_so_far: u32) -> bool {
        match *self {
            RetryPolicy::Infinite => false,
            RetryPolicy::Limited { max_attempts } => attempts_so_far >= max_attempts,
        }
    }
}

impl Default for RetryPolicy {
    /// The paper's assumption: infinite retries.
    fn default() -> Self {
        RetryPolicy::Infinite
    }
}

/// Tracks the attempt count of the head-of-line frame against a policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryState {
    attempts: u32,
}

impl RetryState {
    /// Fresh state for a new head-of-line frame.
    pub fn new() -> Self {
        RetryState { attempts: 0 }
    }

    /// Record a failed attempt; returns `true` if the policy says the frame
    /// must now be dropped (the caller then resets with [`RetryState::new`]).
    pub fn record_failure(&mut self, policy: RetryPolicy) -> bool {
        self.attempts = self.attempts.saturating_add(1);
        policy.should_drop(self.attempts)
    }

    /// Attempts made so far for the current frame.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_never_drops() {
        let p = RetryPolicy::Infinite;
        assert!(!p.should_drop(0));
        assert!(!p.should_drop(u32::MAX));
        let mut st = RetryState::new();
        for _ in 0..1000 {
            assert!(!st.record_failure(p));
        }
        assert_eq!(st.attempts(), 1000);
    }

    #[test]
    fn limited_drops_at_bound() {
        let p = RetryPolicy::Limited { max_attempts: 3 };
        let mut st = RetryState::new();
        assert!(!st.record_failure(p)); // 1st failure
        assert!(!st.record_failure(p)); // 2nd
        assert!(st.record_failure(p)); // 3rd → drop
    }

    #[test]
    fn dot11_default_is_seven() {
        let mut st = RetryState::new();
        let mut drops = 0;
        for _ in 0..7 {
            if st.record_failure(RetryPolicy::DOT11_DEFAULT) {
                drops += 1;
            }
        }
        assert_eq!(drops, 1);
        assert_eq!(st.attempts(), 7);
    }

    #[test]
    fn default_policy_is_infinite() {
        assert_eq!(RetryPolicy::default(), RetryPolicy::Infinite);
    }
}
