//! The IEEE 1901 backoff process — the paper's central mechanism.
//!
//! 1901 keeps the minimum contention window small (CW₀ = 8, against 802.11's
//! 16 or 32) to avoid wasting backoff slots, and compensates for the
//! resulting collision pressure with the **deferral counter**: a station
//! that merely *senses* `d_i + 1` transmissions while waiting at stage *i*
//! concludes the channel is crowded and moves to the next stage without
//! paying for a collision first.
//!
//! The implementation mirrors the finite state machine of the paper's
//! reference simulator exactly, including its less obvious corners:
//!
//! * BC is decremented on busy slots as well as idle slots (§2: "In case
//!   the medium is sensed busy, BC is also decreased by 1 once the medium
//!   is sensed idle again");
//! * the deferral jump happens when the medium is sensed busy *while*
//!   `DC == 0` — i.e. the check precedes the decrement;
//! * the stage index saturates at the last table entry;
//! * BPC counts stage entries since the last success, so the stage in
//!   effect after `k` redraws without success is `min(k − 1, m − 1)`.

use crate::process::{BackoffProcess, BackoffSnapshot, Protocol, SoaStage, SoaState, SoaView};
use plc_core::config::{CsmaConfig, DC_DISABLED};
use rand::Rng;
use rand::RngCore;

/// IEEE 1901 backoff state machine. See the [module docs](self) for
/// semantics. Construct with [`Backoff1901::new`]; drive with the
/// [`BackoffProcess`] events.
///
/// # Examples
///
/// ```
/// use plc_mac::{Backoff1901, BackoffProcess};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut station = Backoff1901::default_ca1(&mut rng);
/// assert_eq!(station.stage(), 0);
/// assert_eq!(station.cw(), 8);
///
/// // Sensing the medium busy at stage 0 (d₀ = 0) jumps straight to
/// // stage 1 without transmitting — the paper's key mechanism.
/// if !station.wants_tx() {
///     station.on_busy(&mut rng);
///     assert_eq!(station.stage(), 1);
///     assert_eq!(station.cw(), 16);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Backoff1901 {
    cfg: CsmaConfig,
    /// Backoff procedure counter: redraws since last success. The stage in
    /// effect is `min(bpc - 1, m - 1)` (bpc ≥ 1 after construction).
    bpc: u32,
    /// Backoff counter.
    bc: u32,
    /// Deferral counter (may be [`DC_DISABLED`]).
    dc: u32,
    /// Contention window in effect.
    cw: u32,
}

impl Backoff1901 {
    /// Create a station entering backoff stage 0 with a fresh packet,
    /// drawing the initial BC from `{0, …, CW₀ − 1}`.
    pub fn new(cfg: CsmaConfig, rng: &mut dyn RngCore) -> Self {
        let mut s = Backoff1901 {
            cfg,
            bpc: 0,
            bc: 0,
            dc: 0,
            cw: 0,
        };
        s.redraw(rng);
        s
    }

    /// Convenience constructor with the paper's default CA1 table.
    pub fn default_ca1(rng: &mut dyn RngCore) -> Self {
        Self::new(CsmaConfig::ieee1901_ca01(), rng)
    }

    /// Enter the backoff stage selected by the current BPC: load `CW_i` and
    /// `d_i`, draw `BC ~ U{0…CW_i−1}`, then increment BPC.
    fn redraw(&mut self, rng: &mut dyn RngCore) {
        let stage = self.cfg.stage_for_bpc(self.bpc);
        let params = self.cfg.stage(stage);
        self.cw = params.cw;
        self.dc = params.dc;
        self.bc = rng.gen_range(0..self.cw);
        self.bpc = self.bpc.saturating_add(1);
    }

    /// The backoff stage currently in effect.
    pub fn stage(&self) -> usize {
        // bpc ≥ 1 after construction; the parameters in effect were chosen
        // with the *previous* bpc value.
        self.cfg.stage_for_bpc(self.bpc.saturating_sub(1))
    }

    /// Current backoff counter.
    pub fn bc(&self) -> u32 {
        self.bc
    }

    /// Current deferral counter (`None` if disabled at this stage).
    pub fn dc(&self) -> Option<u32> {
        (self.dc != DC_DISABLED).then_some(self.dc)
    }

    /// Contention window in effect.
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// The configuration this process runs.
    pub fn config(&self) -> &CsmaConfig {
        &self.cfg
    }
}

impl BackoffProcess for Backoff1901 {
    fn wants_tx(&self) -> bool {
        self.bc == 0
    }

    fn on_idle_slot(&mut self, _rng: &mut dyn RngCore) {
        debug_assert!(self.bc > 0, "station with BC == 0 must transmit, not idle");
        self.bc -= 1;
    }

    fn on_busy(&mut self, rng: &mut dyn RngCore) {
        debug_assert!(
            self.bc > 0,
            "station with BC == 0 transmitted; on_busy is for deferring stations"
        );
        if self.dc == 0 {
            // Sensed busy while DC = 0: jump to the next backoff stage
            // without attempting a transmission.
            self.redraw(rng);
        } else {
            // Busy slot: both counters decrease (DC only if enabled).
            self.bc -= 1;
            if self.dc != DC_DISABLED {
                self.dc -= 1;
            }
        }
    }

    fn on_tx_success(&mut self, rng: &mut dyn RngCore) {
        self.bpc = 0;
        self.redraw(rng);
    }

    fn on_tx_failure(&mut self, rng: &mut dyn RngCore) {
        // BPC already points past the stage that failed; redraw advances it.
        self.redraw(rng);
    }

    fn idle_skip(&self) -> Option<u32> {
        // DC only moves on busy slots, so BC idle slots are pure countdown.
        Some(self.bc)
    }

    fn consume_idle_slots(&mut self, n: u32) {
        debug_assert!(n <= self.bc, "cannot skip past BC = 0");
        self.bc -= n;
    }

    fn soa_view(&self) -> Option<SoaView> {
        Some(SoaView {
            protocol: Protocol::Ieee1901,
            stages: self
                .cfg
                .stages()
                .iter()
                .map(|p| SoaStage { cw: p.cw, dc: p.dc })
                .collect(),
            state: SoaState {
                bc: self.bc,
                dc: self.dc,
                bpc: self.bpc,
                stage: self.stage() as u32,
            },
        })
    }

    fn protocol(&self) -> Protocol {
        Protocol::Ieee1901
    }

    fn snapshot(&self) -> BackoffSnapshot {
        BackoffSnapshot {
            stage: self.stage(),
            cw: self.cw,
            bc: self.bc,
            dc: self.dc(),
            bpc: self.bpc.saturating_sub(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn fresh(seed: u64) -> (Backoff1901, SmallRng) {
        let mut r = rng(seed);
        let b = Backoff1901::default_ca1(&mut r);
        (b, r)
    }

    #[test]
    fn starts_at_stage_zero_with_table_params() {
        let (b, _) = fresh(1);
        assert_eq!(b.stage(), 0);
        assert_eq!(b.cw(), 8);
        assert_eq!(b.dc(), Some(0));
        assert!(b.bc() < 8);
        let s = b.snapshot();
        assert_eq!(s.stage, 0);
        assert_eq!(s.cw, 8);
        assert_eq!(s.bpc, 0);
    }

    #[test]
    fn initial_bc_spans_full_window() {
        // Over many seeds the initial BC must hit every value of {0..7}.
        let mut seen = [false; 8];
        for seed in 0..256 {
            let (b, _) = fresh(seed);
            seen[b.bc() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "initial BC values seen: {seen:?}");
    }

    #[test]
    fn idle_slots_count_down_bc() {
        for seed in 0..64 {
            let (mut b, mut r) = fresh(seed);
            let start = b.bc();
            for expected in (0..start).rev() {
                assert!(!b.wants_tx());
                b.on_idle_slot(&mut r);
                assert_eq!(b.bc(), expected);
            }
            assert!(b.wants_tx());
        }
    }

    #[test]
    fn stage0_busy_always_jumps() {
        // d_0 = 0, so at stage 0 any sensed busy slot jumps to stage 1.
        for seed in 0..64 {
            let (mut b, mut r) = fresh(seed);
            if b.wants_tx() {
                continue; // drew BC = 0; it would transmit, not defer
            }
            b.on_busy(&mut r);
            assert_eq!(b.stage(), 1, "seed {seed}");
            assert_eq!(b.cw(), 16);
            assert_eq!(b.dc(), Some(1));
            assert_eq!(b.snapshot().bpc, 1);
        }
    }

    #[test]
    fn busy_decrements_both_counters_when_dc_positive() {
        // Get to stage 1 (dc = 1), then sense one busy slot: bc and dc both
        // drop; a second busy slot (dc now 0) jumps to stage 2.
        let mut r = rng(7);
        let mut b = Backoff1901::default_ca1(&mut r);
        // Force to stage 1 via a failure.
        b.on_tx_failure(&mut r);
        assert_eq!(b.stage(), 1);
        assert_eq!(b.dc(), Some(1));
        // Find a state with bc >= 2 so we can observe two busy slots.
        while b.bc() < 2 {
            b.on_tx_failure(&mut r);
            if b.stage() == 1 {
                continue;
            }
            // went past stage 1; restart
            b = Backoff1901::default_ca1(&mut r);
            b.on_tx_failure(&mut r);
        }
        let bc0 = b.bc();
        b.on_busy(&mut r);
        assert_eq!(b.bc(), bc0 - 1, "busy slot decrements BC");
        assert_eq!(b.dc(), Some(0), "busy slot decrements DC");
        assert_eq!(b.stage(), 1, "no jump while DC was positive");
        b.on_busy(&mut r);
        assert_eq!(b.stage(), 2, "busy with DC=0 jumps without transmitting");
        assert_eq!(b.cw(), 32);
        assert_eq!(b.dc(), Some(3));
    }

    #[test]
    fn failure_walks_stages_and_saturates() {
        let mut r = rng(3);
        let mut b = Backoff1901::default_ca1(&mut r);
        let expected = [(1usize, 16u32), (2, 32), (3, 64), (3, 64), (3, 64)];
        for &(stage, cw) in &expected {
            b.on_tx_failure(&mut r);
            assert_eq!(b.stage(), stage);
            assert_eq!(b.cw(), cw);
            assert!(b.bc() < cw);
        }
    }

    #[test]
    fn success_resets_to_stage_zero() {
        let mut r = rng(4);
        let mut b = Backoff1901::default_ca1(&mut r);
        for _ in 0..5 {
            b.on_tx_failure(&mut r);
        }
        assert_eq!(b.stage(), 3);
        b.on_tx_success(&mut r);
        assert_eq!(b.stage(), 0);
        assert_eq!(b.cw(), 8);
        assert_eq!(b.dc(), Some(0));
        assert_eq!(b.snapshot().bpc, 0);
    }

    #[test]
    fn ca23_table_saturates_at_cw32() {
        let mut r = rng(5);
        let mut b = Backoff1901::new(CsmaConfig::ieee1901_ca23(), &mut r);
        for _ in 0..6 {
            b.on_tx_failure(&mut r);
        }
        assert_eq!(b.cw(), 32);
        assert_eq!(b.stage(), 3);
    }

    #[test]
    fn disabled_dc_never_jumps() {
        // 1901 process with DC disabled: busy slots decrement BC only, and
        // the stage never advances without a transmission failure.
        let cfg = CsmaConfig::constant_window(16).unwrap();
        let mut r = rng(6);
        let mut b = Backoff1901::new(cfg, &mut r);
        while b.bc() == 0 {
            b = Backoff1901::new(CsmaConfig::constant_window(16).unwrap(), &mut r);
        }
        let start_stage = b.stage();
        let bc0 = b.bc();
        b.on_busy(&mut r);
        assert_eq!(b.stage(), start_stage);
        assert_eq!(b.bc(), bc0 - 1);
        assert_eq!(b.dc(), None);
        assert_eq!(b.snapshot().dc, None);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = rng(seed);
            let mut b = Backoff1901::default_ca1(&mut r);
            let mut trail = Vec::new();
            for i in 0..200 {
                if b.wants_tx() {
                    if i % 3 == 0 {
                        b.on_tx_success(&mut r);
                    } else {
                        b.on_tx_failure(&mut r);
                    }
                } else if i % 2 == 0 {
                    b.on_idle_slot(&mut r);
                } else {
                    b.on_busy(&mut r);
                }
                trail.push(b.snapshot());
            }
            trail
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn protocol_tag() {
        let (b, _) = fresh(1);
        assert_eq!(b.protocol(), Protocol::Ieee1901);
    }

    #[test]
    fn bc_never_underflows_under_random_driving() {
        // Drive with random legal event sequences; counters must stay
        // consistent (BC only 0 at transmission points).
        let mut r = rng(99);
        let mut b = Backoff1901::default_ca1(&mut r);
        for step in 0..10_000 {
            if b.wants_tx() {
                if step % 5 == 0 {
                    b.on_tx_success(&mut r);
                } else {
                    b.on_tx_failure(&mut r);
                }
            } else if step % 3 == 0 {
                b.on_busy(&mut r);
            } else {
                b.on_idle_slot(&mut r);
            }
            assert!(b.bc() < b.cw().max(1));
            assert!(b.stage() <= 3);
        }
    }
}
