//! The 802.11 DCF baseline backoff process.
//!
//! The paper contrasts 1901 against 802.11-style CSMA/CA throughout: in
//! 802.11, stations **freeze** the backoff counter while the medium is busy
//! (no deferral counter exists), and the contention window doubles only
//! after a *failed transmission attempt* — `CW_i = 2^i · CW_0`.
//!
//! This implementation is driven by the same slot events as
//! [`Backoff1901`](crate::Backoff1901), so the two protocols can contend in
//! the same simulated channel for head-to-head comparisons (extension
//! experiment E1) and for the short-term fairness study of the paper's
//! prior work \[4\].

use crate::process::{BackoffProcess, BackoffSnapshot, Protocol, SoaStage, SoaState, SoaView};
use plc_core::config::{CsmaConfig, DC_DISABLED};
use rand::Rng;
use rand::RngCore;

/// 802.11 DCF backoff state machine: binary-exponential contention window,
/// freeze-on-busy, no deferral counter.
#[derive(Debug, Clone)]
pub struct BackoffDcf {
    cfg: CsmaConfig,
    /// Current backoff stage (saturates at the last table entry).
    stage: usize,
    /// Retries since last success (equals the number of failed attempts;
    /// unlike 1901's BPC it can only advance through failures).
    retries: u32,
    /// Backoff counter.
    bc: u32,
    /// Contention window in effect.
    cw: u32,
}

impl BackoffDcf {
    /// Create a station entering stage 0, drawing `BC ~ U{0…CW₀−1}`.
    ///
    /// Any [`CsmaConfig`] works; the deferral-counter column is ignored.
    /// Use [`CsmaConfig::dcf_like`] for the classic doubling table.
    pub fn new(cfg: CsmaConfig, rng: &mut dyn RngCore) -> Self {
        let mut s = BackoffDcf {
            cfg,
            stage: 0,
            retries: 0,
            bc: 0,
            cw: 0,
        };
        s.enter_stage(0, rng);
        s
    }

    /// Classic DCF with `CW_min = 16` doubling over 6 stages
    /// (16 … 512).
    pub fn classic(rng: &mut dyn RngCore) -> Self {
        Self::new(CsmaConfig::dcf_like(16, 6).expect("valid table"), rng)
    }

    /// DCF with the same `CW_min = 8` as 1901 and doubling up to 64 — the
    /// "802.11 with 1901's windows" comparison point that isolates the
    /// deferral counter's effect.
    pub fn with_1901_windows(rng: &mut dyn RngCore) -> Self {
        Self::new(CsmaConfig::dcf_like(8, 4).expect("valid table"), rng)
    }

    fn enter_stage(&mut self, stage: usize, rng: &mut dyn RngCore) {
        self.stage = stage.min(self.cfg.num_stages() - 1);
        self.cw = self.cfg.stage(self.stage).cw;
        self.bc = rng.gen_range(0..self.cw);
    }

    /// Current backoff stage.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Current backoff counter.
    pub fn bc(&self) -> u32 {
        self.bc
    }

    /// Contention window in effect.
    pub fn cw(&self) -> u32 {
        self.cw
    }
}

impl BackoffProcess for BackoffDcf {
    fn wants_tx(&self) -> bool {
        self.bc == 0
    }

    fn on_idle_slot(&mut self, _rng: &mut dyn RngCore) {
        debug_assert!(self.bc > 0, "station with BC == 0 must transmit, not idle");
        self.bc -= 1;
    }

    fn on_busy(&mut self, _rng: &mut dyn RngCore) {
        // 802.11 freezes the backoff counter while the medium is busy.
    }

    fn on_tx_success(&mut self, rng: &mut dyn RngCore) {
        self.retries = 0;
        self.enter_stage(0, rng);
    }

    fn on_tx_failure(&mut self, rng: &mut dyn RngCore) {
        self.retries = self.retries.saturating_add(1);
        self.enter_stage(self.stage + 1, rng);
    }

    fn idle_skip(&self) -> Option<u32> {
        Some(self.bc)
    }

    fn consume_idle_slots(&mut self, n: u32) {
        debug_assert!(n <= self.bc, "cannot skip past BC = 0");
        self.bc -= n;
    }

    fn soa_view(&self) -> Option<SoaView> {
        Some(SoaView {
            protocol: Protocol::Dcf80211,
            stages: self
                .cfg
                .stages()
                .iter()
                .map(|p| SoaStage {
                    cw: p.cw,
                    dc: DC_DISABLED,
                })
                .collect(),
            state: SoaState {
                bc: self.bc,
                dc: DC_DISABLED,
                bpc: self.retries,
                stage: self.stage as u32,
            },
        })
    }

    fn protocol(&self) -> Protocol {
        Protocol::Dcf80211
    }

    fn snapshot(&self) -> BackoffSnapshot {
        BackoffSnapshot {
            stage: self.stage,
            cw: self.cw,
            bc: self.bc,
            dc: None,
            bpc: self.retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn classic_starts_at_16() {
        let mut r = rng(1);
        let b = BackoffDcf::classic(&mut r);
        assert_eq!(b.stage(), 0);
        assert_eq!(b.cw(), 16);
        assert!(b.bc() < 16);
        assert_eq!(b.protocol(), Protocol::Dcf80211);
    }

    #[test]
    fn busy_freezes_bc() {
        let mut r = rng(2);
        let mut b = BackoffDcf::classic(&mut r);
        while b.bc() == 0 {
            b = BackoffDcf::classic(&mut r);
        }
        let bc0 = b.bc();
        for _ in 0..100 {
            b.on_busy(&mut r);
        }
        assert_eq!(b.bc(), bc0, "802.11 backoff must freeze while busy");
        assert_eq!(b.stage(), 0, "busy slots never advance the DCF stage");
    }

    #[test]
    fn idle_slots_count_down() {
        let mut r = rng(3);
        let mut b = BackoffDcf::classic(&mut r);
        while b.bc() == 0 {
            b = BackoffDcf::classic(&mut r);
        }
        let start = b.bc();
        for expected in (0..start).rev() {
            b.on_idle_slot(&mut r);
            assert_eq!(b.bc(), expected);
        }
        assert!(b.wants_tx());
    }

    #[test]
    fn failures_double_window_and_saturate() {
        let mut r = rng(4);
        let mut b = BackoffDcf::classic(&mut r);
        let expected = [32u32, 64, 128, 256, 512, 512, 512];
        for (k, &cw) in expected.iter().enumerate() {
            b.on_tx_failure(&mut r);
            assert_eq!(b.cw(), cw, "after {} failures", k + 1);
            assert!(b.bc() < cw);
        }
        assert_eq!(b.snapshot().bpc, 7);
    }

    #[test]
    fn success_resets() {
        let mut r = rng(5);
        let mut b = BackoffDcf::classic(&mut r);
        b.on_tx_failure(&mut r);
        b.on_tx_failure(&mut r);
        b.on_tx_success(&mut r);
        assert_eq!(b.stage(), 0);
        assert_eq!(b.cw(), 16);
        assert_eq!(b.snapshot().bpc, 0);
    }

    #[test]
    fn snapshot_has_no_dc() {
        let mut r = rng(6);
        let b = BackoffDcf::classic(&mut r);
        assert_eq!(b.snapshot().dc, None);
    }

    #[test]
    fn matched_windows_variant() {
        let mut r = rng(7);
        let b = BackoffDcf::with_1901_windows(&mut r);
        assert_eq!(b.cw(), 8);
        let mut b2 = b.clone();
        b2.on_tx_failure(&mut r);
        assert_eq!(b2.cw(), 16);
        b2.on_tx_failure(&mut r);
        b2.on_tx_failure(&mut r);
        b2.on_tx_failure(&mut r);
        assert_eq!(b2.cw(), 64, "saturates at 64 like the 1901 CA1 table");
    }

    #[test]
    fn initial_bc_spans_window() {
        let mut seen = [false; 16];
        for seed in 0..512 {
            let mut r = rng(seed);
            let b = BackoffDcf::classic(&mut r);
            seen[b.bc() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
