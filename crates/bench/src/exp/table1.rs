//! Table 1 — the IEEE 1901 contention parameters per backoff stage and
//! priority class, regenerated from the implementation's own constants
//! (so a drift between code and paper fails loudly here and in tests).

use crate::RunOpts;
use plc_core::config::CsmaConfig;
use plc_core::error::Result;
use plc_stats::table::Table;

/// One Table 1 row: `(stage, bpc_label, (cw, dc) for CA0/1, (cw, dc) for CA2/3)`.
pub type Row = (usize, &'static str, (u32, u32), (u32, u32));

/// The four rows of Table 1 as `(stage, bpc_label, ca01, ca23)`.
pub fn rows() -> Vec<Row> {
    let ca01 = CsmaConfig::ieee1901_ca01();
    let ca23 = CsmaConfig::ieee1901_ca23();
    let bpc_labels = ["0", "1", "2", "≥ 3"];
    (0..4)
        .map(|i| {
            let a = ca01.stage(i);
            let b = ca23.stage(i);
            (i, bpc_labels[i], (a.cw, a.dc), (b.cw, b.dc))
        })
        .collect()
}

/// Render the table.
pub fn run(opts: &RunOpts) -> Result<String> {
    let _render = opts.obs.timer("exp.table1.render").start();
    let mut t = Table::new(vec![
        "backoff stage i",
        "BPC",
        "CA0/CA1 CWi",
        "CA0/CA1 di",
        "CA2/CA3 CWi",
        "CA2/CA3 di",
    ]);
    for (i, bpc, (cw01, d01), (cw23, d23)) in rows() {
        t.row(vec![
            i.to_string(),
            bpc.to_string(),
            cw01.to_string(),
            d01.to_string(),
            cw23.to_string(),
            d23.to_string(),
        ]);
    }
    Ok(format!(
        "Table 1 — IEEE 1901 contention windows CWi and initial deferral\n\
         counter values di per backoff stage (regenerated from plc-core):\n\n{}",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_the_paper_exactly() {
        let r = rows();
        assert_eq!(r.len(), 4);
        let expect = [
            (8, 0, 8, 0),
            (16, 1, 16, 1),
            (32, 3, 16, 3),
            (64, 15, 32, 15),
        ];
        for (i, (cw01, d01, cw23, d23)) in expect.iter().enumerate() {
            assert_eq!(r[i].2, (*cw01, *d01), "CA0/CA1 stage {i}");
            assert_eq!(r[i].3, (*cw23, *d23), "CA2/CA3 stage {i}");
        }
    }

    #[test]
    fn render_contains_all_values() {
        let s = run(&RunOpts::default()).unwrap();
        for needle in ["64", "15", "≥ 3", "CA2/CA3"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
