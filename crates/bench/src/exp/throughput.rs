//! E1 — normalized throughput vs number of stations: IEEE 1901 against
//! 802.11 DCF, simulation and analysis.
//!
//! The CoNEXT-scope comparison the report's simulator exists to serve:
//! 1901 keeps CW₀ = 8 to waste few backoff slots and relies on the
//! deferral counter to contain collisions. Three baselines:
//!
//! * 802.11 DCF with classic windows (CW 16…512);
//! * 802.11 DCF with 1901's windows (CW 8…64) — the ablation that
//!   isolates the deferral counter;
//! * 1901 CA1 defaults.

use crate::RunOpts;
use plc_analysis::CoupledModel;
use plc_core::config::CsmaConfig;
use plc_core::error::Result;
use plc_core::timing::MacTiming;
use plc_sim::sweep;
use plc_sim::Simulation;
use plc_stats::table::{fmt_prob, Table};

/// One throughput point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Station count.
    pub n: usize,
    /// 1901 CA1, simulated.
    pub s1901: f64,
    /// 1901 CA1, analytical.
    pub s1901_model: f64,
    /// DCF classic windows, simulated.
    pub dcf: f64,
    /// DCF with 1901's windows, simulated.
    pub dcf_matched: f64,
}

/// The sweep over N, run on the deterministic [`plc_sim::sweep`] pool.
pub fn points(opts: &RunOpts, ns: &[usize]) -> Result<Vec<Point>> {
    let horizon = opts.horizon_us();
    let model = CoupledModel::default_ca1();
    let timing = MacTiming::paper_default();
    let matched_cfg = CsmaConfig::dcf_like(8, 4)?;
    Ok(sweep::parallel_map(
        sweep::default_workers(),
        ns.to_vec(),
        |_, n| {
            let s1901 = Simulation::ieee1901(n).horizon_us(horizon).seed(7).run();
            let dcf = Simulation::dcf(n).horizon_us(horizon).seed(7).run();
            let dcf_matched = Simulation::dcf(n)
                .config(matched_cfg.clone())
                .horizon_us(horizon)
                .seed(7)
                .run();
            Point {
                n,
                s1901: s1901.norm_throughput,
                s1901_model: model.throughput(n, &timing),
                dcf: dcf.norm_throughput,
                dcf_matched: dcf_matched.norm_throughput,
            }
        },
    ))
}

/// Render the comparison.
pub fn run(opts: &RunOpts) -> Result<String> {
    let ns = [1usize, 2, 3, 5, 7, 10, 15, 20, 30];
    let span = opts.obs.timer("exp.throughput.points").start();
    let pts = points(opts, &ns)?;
    drop(span);
    let _render = opts.obs.timer("exp.throughput.render").start();
    let mut t = Table::new(vec![
        "N",
        "1901 (sim)",
        "1901 (model)",
        "DCF CW16..512",
        "DCF CW8..64",
    ]);
    for p in &pts {
        t.row(vec![
            p.n.to_string(),
            fmt_prob(p.s1901),
            fmt_prob(p.s1901_model),
            fmt_prob(p.dcf),
            fmt_prob(p.dcf_matched),
        ]);
    }
    Ok(format!(
        "E1 — normalized throughput vs N (paper timing: σ 35.84 µs, Ts 2542.64 µs,\n\
         Tc 2920.64 µs, L 2050 µs)\n\n{}\n\
         1901 wins at small N (smaller CW₀ wastes fewer idle slots) and holds up\n\
         at larger N thanks to the deferral counter; DCF with 1901's windows but\n\
         no deferral counter collapses fastest.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold() {
        let pts = points(&RunOpts::quick(), &[2, 10, 20]).unwrap();
        // 1901 beats classic DCF at N=2 (backoff efficiency).
        assert!(pts[0].s1901 > pts[0].dcf, "{:?}", pts[0]);
        // The matched-window no-deferral ablation is the worst at N=20.
        assert!(pts[2].dcf_matched < pts[2].s1901, "{:?}", pts[2]);
        assert!(pts[2].dcf_matched < pts[2].dcf, "{:?}", pts[2]);
        // Model tracks simulation for 1901.
        for p in &pts {
            assert!((p.s1901 - p.s1901_model).abs() < 0.03, "{p:?}");
        }
        // Everything degrades from N=2 to N=20.
        assert!(pts[2].s1901 < pts[0].s1901);
    }
}
