//! E3 — "boosting": model-guided search for throughput-optimal (CW, DC)
//! tables, validated by simulation.

use crate::RunOpts;
use plc_analysis::boost::{boost_search, BoostOptions};
use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_core::error::{Error, Result};
use plc_core::timing::MacTiming;
use plc_sim::sweep;
use plc_sim::Simulation;
use plc_stats::table::{fmt_prob, Table};

/// The boosted-vs-default result at one N.
#[derive(Debug, Clone)]
pub struct BoostResult {
    /// Station count.
    pub n: usize,
    /// Simulated throughput of the default CA1 table.
    pub default_throughput: f64,
    /// Simulated throughput of the best candidate found.
    pub boosted_throughput: f64,
    /// The winning table.
    pub config: CsmaConfig,
}

/// Search and validate at each N, on the deterministic
/// [`plc_sim::sweep`] pool.
pub fn results(opts: &RunOpts, ns: &[usize]) -> Result<Vec<BoostResult>> {
    let timing = MacTiming::paper_default();
    let horizon = opts.horizon_us();
    sweep::parallel_map(sweep::default_workers(), ns.to_vec(), |_, n| {
        let best = boost_search(n, &timing, &BoostOptions::default())
            .into_iter()
            .next()
            .ok_or_else(|| {
                Error::runtime(format!("boost search produced no candidates at N={n}"))
            })?;
        let default_sim = Simulation::ieee1901(n).horizon_us(horizon).seed(13).run();
        let boosted_sim = Simulation::ieee1901(n)
            .config(best.config.clone())
            .horizon_us(horizon)
            .seed(13)
            .run();
        Ok(BoostResult {
            n,
            default_throughput: default_sim.norm_throughput,
            boosted_throughput: boosted_sim.norm_throughput,
            config: best.config,
        })
    })
    .into_iter()
    .collect()
}

fn dc_label(cfg: &CsmaConfig) -> String {
    format!(
        "{:?}",
        cfg.dc_vector()
            .iter()
            .map(|&d| if d == DC_DISABLED {
                "-".into()
            } else {
                d.to_string()
            })
            .collect::<Vec<_>>()
    )
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let span = opts.obs.timer("exp.boost.search").start();
    let rs = results(opts, &[2, 5, 10, 20])?;
    drop(span);
    let _render = opts.obs.timer("exp.boost.render").start();
    let mut t = Table::new(vec!["N", "default S", "boosted S", "gain", "cw", "dc"]);
    for r in &rs {
        t.row(vec![
            r.n.to_string(),
            fmt_prob(r.default_throughput),
            fmt_prob(r.boosted_throughput),
            format!(
                "{:+.1}%",
                100.0 * (r.boosted_throughput / r.default_throughput - 1.0)
            ),
            format!("{:?}", r.config.cw_vector()),
            dc_label(&r.config),
        ]);
    }
    Ok(format!(
        "E3 — boosting: model-guided (CW, DC) search, simulation-validated\n\n{}\n\
         The default table is tuned for small N; at N ≥ 10 wider windows win\n\
         back the airtime currently lost to collisions.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boosting_helps_at_large_n_not_small() {
        let rs = results(&RunOpts::quick(), &[2, 20]).unwrap();
        let small_gain = rs[0].boosted_throughput / rs[0].default_throughput - 1.0;
        let large_gain = rs[1].boosted_throughput / rs[1].default_throughput - 1.0;
        assert!(
            large_gain > 0.05,
            "at N=20 the boosted table must win ≥5%: {large_gain}"
        );
        assert!(
            large_gain > small_gain,
            "gains grow with N: {small_gain} vs {large_gain}"
        );
    }
}
