//! E14 — Table 2 under chaos: the §3.2 measurement run against a faulty
//! testbed (ISSUE 4's acceptance experiment).
//!
//! The fault plan drops 20% of each MME leg on the management bus, browns
//! out station 0 halfway through the test (its counters restart from
//! zero), and narrows every firmware counter to 32 bits. The measurement
//! survives via the resilience stack: the ampstat client retries with
//! bounded backoff, the experiment reads all stations at 8 checkpoints,
//! and the stitcher repairs the reset/wrap discontinuities. The headline
//! claim is the last column of the table: the stitched collision
//! probability stays within ±0.02 of the fault-free measurement for every
//! N of Table 2 — chaos on the *management* plane must not move a
//! *medium*-plane result.

use crate::RunOpts;
use plc_core::error::Result;
use plc_core::units::Microseconds;
use plc_faults::{FaultPlan, RetryPolicy};
use plc_stats::table::{fmt_prob, Table};
use plc_testbed::CollisionExperiment;

/// One N of the chaos-vs-clean comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPoint {
    /// Number of transmitting stations.
    pub n: usize,
    /// Fault-free collision probability (the Table 2 measurement).
    pub clean_p: f64,
    /// Collision probability measured through the fault plan.
    pub chaos_p: f64,
    /// Counter discontinuities the stitcher repaired.
    pub discontinuities: u64,
    /// MME transaction retries the tools needed.
    pub retries: u64,
}

/// The chaos plan for one test: 20% MME loss per leg, one brownout of
/// station 0 at half the horizon, 32-bit counters.
pub fn chaos_plan(seed: u64, duration: Microseconds) -> FaultPlan {
    FaultPlan::builder()
        .seed(seed)
        .mme_loss(0.2)
        .device_reset_at(0, duration.as_micros() * 0.5)
        .counter_wrap_u32()
        .build()
}

/// Measure Table 2's N = 1…7 twice — clean and through the chaos plan.
pub fn measure(test_secs: f64, seed: u64) -> Result<Vec<ChaosPoint>> {
    (1..=7usize)
        .map(|n| {
            let base = CollisionExperiment {
                duration: Microseconds::from_secs(test_secs),
                ..CollisionExperiment::paper(n, seed + n as u64)
            };
            let clean = base.run()?;
            let mut chaos = base.clone();
            chaos.faults = Some(chaos_plan(seed ^ n as u64, base.duration));
            chaos.checkpoints = 8;
            chaos.retry = RetryPolicy::with_attempts(16);
            let registry = plc_obs::Registry::new();
            let out = chaos.run_observed(&registry)?;
            let retries = registry
                .snapshot()
                .counter("testbed.mme.retries")
                .unwrap_or(0);
            Ok(ChaosPoint {
                n,
                clean_p: clean.collision_probability,
                chaos_p: out.collision_probability,
                discontinuities: out.discontinuities,
                retries,
            })
        })
        .collect()
}

/// Render clean vs chaos.
pub fn run(opts: &RunOpts) -> Result<String> {
    let secs = opts.test_secs();
    let span = opts.obs.timer("exp.chaos.measure").start();
    let points = measure(secs, 31)?;
    drop(span);
    let _render = opts.obs.timer("exp.chaos.render").start();
    let mut t = Table::new(vec![
        "N", "clean p", "chaos p", "|Δp|", "stitched", "retries",
    ]);
    for p in &points {
        t.row(vec![
            p.n.to_string(),
            fmt_prob(p.clean_p),
            fmt_prob(p.chaos_p),
            format!("{:.4}", (p.clean_p - p.chaos_p).abs()),
            p.discontinuities.to_string(),
            p.retries.to_string(),
        ]);
    }
    Ok(format!(
        "Chaos — Table 2 measured through a fault plan ({secs:.0} s tests;\n\
         20% MME loss/leg, station-0 brownout at t/2, 32-bit counters,\n\
         8 checkpoints, 16-attempt retries)\n\n{}\n\
         The management plane is where the faults live, the medium is\n\
         untouched: retried MMEs and stitched counters keep the measured\n\
         collision probability within ±0.02 of the fault-free runs.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_measurement_stays_in_the_figure2_envelope() {
        let points = measure(5.0, 31).unwrap();
        assert_eq!(points.len(), 7);
        for p in &points {
            assert!(
                (p.clean_p - p.chaos_p).abs() < 0.02,
                "N={}: chaos p {} strayed from clean p {}",
                p.n,
                p.chaos_p,
                p.clean_p
            );
        }
        // The plan really fired: brownouts were stitched and the lossy
        // bus forced retries.
        assert!(points.iter().any(|p| p.discontinuities > 0));
        assert!(points.iter().all(|p| p.retries > 0));
        // The chaos series still shows the paper's monotone trend.
        assert!(points[6].chaos_p > points[1].chaos_p);
        assert!(points[0].chaos_p < 0.01, "N=1 stays collision-free");
    }

    #[test]
    fn chaos_measurement_is_deterministic() {
        let a = measure(1.0, 7).unwrap();
        let b = measure(1.0, 7).unwrap();
        assert_eq!(a, b, "same seed and plan must reproduce byte-identically");
    }
}
