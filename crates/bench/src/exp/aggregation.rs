//! E12 — frame aggregation: the load ↔ efficiency ↔ latency triangle.
//!
//! §4.1's first unmodelled mechanism: Ethernet frames are packed into PLC
//! frames under a first-frame timeout and a PB budget. Sweeping the
//! offered Ethernet-frame rate against two timeout settings shows the
//! trade the (unpublished) vendor policy must be making: short timeouts
//! bound latency but ship small MPDUs that waste contention wins; long
//! timeouts fill MPDUs but hold the first frame hostage.

use crate::RunOpts;
use plc_core::error::Result;
use plc_sim::aggregation::{AggregationConfig, AggregationQueue, EthernetFrame};
use plc_stats::table::Table;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Aggregate Poisson arrivals and summarize.
#[derive(Debug, Clone, Copy)]
pub struct AggregationPoint {
    /// Mean Ethernet frames per second offered.
    pub frames_per_s: f64,
    /// Aggregation timeout (µs).
    pub timeout_us: f64,
    /// Mean Ethernet frames per closed MPDU.
    pub mean_frames_per_mpdu: f64,
    /// Mean PBs per closed MPDU.
    pub mean_pbs: f64,
    /// Mean wait of the first frame (µs).
    pub mean_wait_us: f64,
}

/// Run one configuration over `horizon_us` of Poisson arrivals.
pub fn measure(frames_per_s: f64, timeout_us: f64, horizon_us: f64, seed: u64) -> AggregationPoint {
    let cfg = AggregationConfig {
        timeout_us,
        ..AggregationConfig::default_hpav()
    };
    let mut q = AggregationQueue::new(cfg);
    let mut rng = SmallRng::seed_from_u64(seed);
    let rate_per_us = frames_per_s / 1e6;
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / rate_per_us;
        if t > horizon_us {
            break;
        }
        q.push(EthernetFrame {
            arrival_us: t,
            bytes: 1500,
        });
    }
    q.drain(horizon_us + timeout_us);
    let closed = q.take_closed();
    let n = closed.len().max(1) as f64;
    AggregationPoint {
        frames_per_s,
        timeout_us,
        mean_frames_per_mpdu: closed.iter().map(|m| m.frames).sum::<usize>() as f64 / n,
        mean_pbs: closed.iter().map(|m| m.pbs as usize).sum::<usize>() as f64 / n,
        mean_wait_us: closed.iter().map(|m| m.first_frame_wait_us).sum::<f64>() / n,
    }
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let _span = opts.obs.timer("exp.aggregation.measure").start();
    let horizon = opts.horizon_us();
    let mut t = Table::new(vec![
        "frames/s",
        "timeout (µs)",
        "frames/MPDU",
        "PBs/MPDU",
        "first-frame wait (µs)",
    ]);
    for &rate in &[500.0, 2_000.0, 8_000.0, 20_000.0] {
        for &timeout in &[500.0, 2_000.0] {
            let p = measure(rate, timeout, horizon, 12);
            t.row(vec![
                format!("{rate:.0}"),
                format!("{timeout:.0}"),
                format!("{:.2}", p.mean_frames_per_mpdu),
                format!("{:.1}", p.mean_pbs),
                format!("{:.0}", p.mean_wait_us),
            ]);
        }
    }
    Ok(format!(
        "E12 — Ethernet→PLC frame aggregation (1500 B frames, 72-PB budget)\n\n{}\n\
         Light load ships near-empty MPDUs after a full timeout wait; heavy\n\
         load fills the 72-PB budget quickly (24 frames × 3 PBs) and the\n\
         wait collapses — aggregation is a latency tax only when idle.\n\
         The timeout knob trades first-frame latency against efficiency in\n\
         between, which is why vendors tune (and hide) it.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_waits_heavy_load_fills() {
        let light = measure(500.0, 2_000.0, 5e6, 1);
        let heavy = measure(50_000.0, 2_000.0, 5e6, 1);
        // Light: mostly 1–2 frames, wait ≈ the timeout.
        assert!(light.mean_frames_per_mpdu < 3.0);
        assert!(
            (light.mean_wait_us - 2_000.0).abs() < 300.0,
            "{}",
            light.mean_wait_us
        );
        // Heavy: the 72-PB budget (24 × 3 PBs) fills well before timeout.
        assert!(heavy.mean_frames_per_mpdu > 20.0);
        assert!(heavy.mean_wait_us < 700.0);
        assert!(heavy.mean_pbs > 65.0);
    }

    #[test]
    fn shorter_timeout_trades_efficiency_for_latency() {
        let short = measure(2_000.0, 500.0, 5e6, 2);
        let long = measure(2_000.0, 2_000.0, 5e6, 2);
        assert!(long.mean_frames_per_mpdu > short.mean_frames_per_mpdu);
        assert!(long.mean_wait_us > short.mean_wait_us);
    }
}
