//! E4 — short-term fairness: IEEE 1901 vs 802.11 over success traces
//! (the study of the paper's reference \[4\], fed by §3.3's source traces).

use crate::RunOpts;
use parking_lot::Mutex;
use plc_core::error::Result;
use plc_sim::trace::SuccessTrace;
use plc_sim::Simulation;
use plc_stats::fairness::{intersuccess_counts, windowed_jain};
use plc_stats::table::Table;
use std::sync::Arc;

/// Success trace of a simulation run.
pub fn success_trace(sim: &Simulation) -> Vec<usize> {
    let sink = Arc::new(Mutex::new(SuccessTrace::new()));
    sim.clone().sink(sink.clone()).run();
    let winners = sink.lock().winners.clone();
    winners
}

/// Windowed Jain fairness of both protocols at the given window sizes.
pub fn jain_comparison(opts: &RunOpts, n: usize, windows: &[usize]) -> Vec<(usize, f64, f64)> {
    let horizon = opts.horizon_us();
    let t1901 = success_trace(&Simulation::ieee1901(n).horizon_us(horizon).seed(14));
    let tdcf = success_trace(&Simulation::dcf(n).horizon_us(horizon).seed(14));
    windows
        .iter()
        .map(|&w| (w, windowed_jain(&t1901, n, w), windowed_jain(&tdcf, n, w)))
        .collect()
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let n = 4;
    let span = opts.obs.timer("exp.fairness.traces").start();
    let rows = jain_comparison(opts, n, &[4, 8, 16, 32, 64, 256]);
    let mut t = Table::new(vec!["window", "Jain 1901", "Jain 802.11"]);
    for (w, j1901, jdcf) in &rows {
        t.row(vec![
            w.to_string(),
            format!("{j1901:.4}"),
            format!("{jdcf:.4}"),
        ]);
    }

    let horizon = opts.horizon_us();
    let trace = success_trace(&Simulation::ieee1901(n).horizon_us(horizon).seed(14));
    let gaps = intersuccess_counts(&trace, 0);
    let streaks = gaps.iter().filter(|&&g| g == 0).count() as f64 / gaps.len().max(1) as f64;
    drop(span);
    let _render = opts.obs.timer("exp.fairness.render").start();

    Ok(format!(
        "E4 — short-term fairness, N = {n} saturated stations\n\n{}\n\
         1901 sits below 802.11 at short windows: the winner restarts at CW = 8\n\
         while losers are pushed up stages (often without transmitting), so wins\n\
         come in streaks — {:.1}% of a tagged station's wins immediately follow\n\
         its previous win. Long-run fairness (large windows) is preserved.\n",
        t.render(),
        100.0 * streaks
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_term_gap_and_long_term_convergence() {
        let rows = jain_comparison(&RunOpts::quick(), 4, &[8, 512]);
        let (_, j1901_short, jdcf_short) = rows[0];
        let (_, j1901_long, jdcf_long) = rows[1];
        assert!(
            j1901_short < jdcf_short,
            "1901 {j1901_short} must be less short-term fair than DCF {jdcf_short}"
        );
        assert!(j1901_long > 0.95, "long-run fair: {j1901_long}");
        assert!(jdcf_long > 0.95, "long-run fair: {jdcf_long}");
    }

    #[test]
    fn traces_cover_all_stations() {
        let trace = success_trace(&Simulation::ieee1901(3).horizon_us(5e6).seed(1));
        for s in 0..3 {
            assert!(trace.contains(&s), "station {s} never won");
        }
    }
}
