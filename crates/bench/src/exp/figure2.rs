//! Figure 2 — collision probability vs number of stations: MAC
//! simulation, analysis, and (emulated) HomePlug AV measurements.
//!
//! The paper overlays the three series for N = 1…7 under the default CA1
//! configuration and finds "an excellent fit". The same three series are
//! regenerated here; the sweep over N runs on the deterministic
//! [`plc_sim::sweep`] worker pool (each point is an independent
//! simulation, so results are identical for any worker count).

use crate::RunOpts;
use plc_analysis::CoupledModel;
use plc_core::error::{Error, Result};
use plc_core::units::Microseconds;
use plc_sim::sweep;
use plc_sim::PaperSim;
use plc_stats::summary::Welford;
use plc_stats::table::{fmt_prob, Table};
use plc_testbed::experiment::mean_collision_probability;
use plc_testbed::CollisionExperiment;

/// One Figure 2 point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Station count.
    pub n: usize,
    /// Paper's measured value (from Table 2).
    pub paper: f64,
    /// Reference-simulator value.
    pub simulation: f64,
    /// Coupled-model analysis value.
    pub analysis: f64,
    /// Emulated-testbed measurement (mean over repeats).
    pub measured: f64,
    /// 95% CI half-width of the emulated measurement.
    pub measured_ci95: f64,
}

/// The paper's curve, `ΣCᵢ/ΣAᵢ` from Table 2.
pub const PAPER: [f64; 7] = [
    0.000154, 0.07414, 0.13387, 0.17789, 0.21761, 0.24427, 0.26686,
];

/// Compute all seven points. The sweep over N runs in parallel; the
/// first failing point aborts the figure.
pub fn points(opts: &RunOpts) -> Result<Vec<Point>> {
    let model = CoupledModel::default_ca1();
    let horizon = opts.horizon_us();
    let secs = opts.test_secs().min(60.0);
    let repeats = opts.repeats();

    sweep::parallel_map(sweep::default_workers(), (1..=7usize).collect(), |_, n| {
        let simulation = PaperSim::with_n_and_time(n, horizon)
            .run(40 + n as u64)
            .map_err(|e| Error::runtime(format!("figure2 reference sim N={n}: {e}")))?
            .collision_pr;
        let analysis = model.solve(n).collision_probability;
        let outcomes = CollisionExperiment {
            duration: Microseconds::from_secs(secs),
            ..CollisionExperiment::paper(n, 500 + n as u64)
        }
        .run_repeated(repeats)?;
        let measured = mean_collision_probability(&outcomes);
        let mut w = Welford::new();
        for o in &outcomes {
            w.push(o.collision_probability);
        }
        Ok(Point {
            n,
            paper: PAPER[n - 1],
            simulation,
            analysis,
            measured,
            measured_ci95: w.ci_half_width(0.95),
        })
    })
    .into_iter()
    .collect()
}

/// Render the figure as a table.
pub fn run(opts: &RunOpts) -> Result<String> {
    let span = opts.obs.timer("exp.figure2.points").start();
    let pts = points(opts)?;
    drop(span);
    let _render = opts.obs.timer("exp.figure2.render").start();
    let mut t = Table::new(vec![
        "N",
        "paper (meas.)",
        "simulation",
        "analysis",
        "emul. testbed",
        "±95% CI",
    ]);
    for p in &pts {
        t.row(vec![
            p.n.to_string(),
            fmt_prob(p.paper),
            fmt_prob(p.simulation),
            fmt_prob(p.analysis),
            fmt_prob(p.measured),
            fmt_prob(p.measured_ci95),
        ]);
    }
    Ok(format!(
        "Figure 2 — collision probability vs N (CA1 defaults, {} repeats)\n\n{}",
        opts.repeats(),
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_agree_and_track_the_paper() {
        let pts = points(&RunOpts::quick()).unwrap();
        assert_eq!(pts.len(), 7);
        for p in &pts[1..] {
            // The three reproduced series agree within 2.5 points.
            assert!((p.simulation - p.analysis).abs() < 0.025, "{p:?}");
            assert!((p.simulation - p.measured).abs() < 0.025, "{p:?}");
            // And track the paper within 3 points.
            assert!((p.simulation - p.paper).abs() < 0.03, "{p:?}");
        }
        // Monotone in N.
        for w in pts.windows(2) {
            assert!(w[1].simulation >= w[0].simulation);
        }
    }
}
