//! One module per regenerated table/figure. See the crate docs for the
//! mapping to the paper.

pub mod adaptation;
pub mod aggregation;
pub mod boost;
pub mod boost_portfolio;
pub mod bursts;
pub mod chaos;
pub mod coexistence;
pub mod delay;
pub mod errors;
pub mod fairness;
pub mod figure1;
pub mod figure2;
pub mod load;
pub mod mme_overhead;
pub mod models;
pub mod multidomain;
pub mod priorities;
pub mod table1;
pub mod table2;
pub mod throughput;
pub mod validate_backends;
