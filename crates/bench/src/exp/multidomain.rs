//! E16 — multi-domain coexistence: throughput vs inter-network coupling.
//!
//! Two logical networks share a wire at a varying cable gap. Sweeping
//! the gap walks the coupling axis through its three physical regimes
//! (short-link channel, default thresholds):
//!
//! * **sensed** (cross-SNR ≥ 10 dB): the cells carrier-sense each other
//!   and time-share one contention domain — aggregate throughput ≈ a
//!   single domain's;
//! * **hidden** (0 dB ≤ cross-SNR < 10 dB): the classic hidden-terminal
//!   band — cells cannot defer to each other, so overlapping
//!   transmissions jam and throughput collapses below even the
//!   single-domain level;
//! * **isolated** (cross-SNR < 0 dB): full spatial reuse, aggregate
//!   throughput ≈ 2× a single domain.
//!
//! The rendered table is the hidden-terminal degradation curve the
//! topology layer exists to expose; outside Smoke mode the experiment
//! *enforces* the regime ordering (reuse > sensed sharing > hidden).

use crate::{Mode, RunOpts};
use plc_core::error::{Error, Result};
use plc_sim::{MultiDomainReport, Simulation, Topology};
use plc_stats::table::{fmt_prob, Table};

/// One gap of the coupling sweep.
#[derive(Debug, Clone)]
pub struct CouplingRow {
    /// Cable gap between the two cells (m).
    pub gap_m: f64,
    /// Cross-cell link SNR at the nearest pair (dB).
    pub cross_snr_db: f64,
    /// Coupling regime implied by the thresholds.
    pub regime: &'static str,
    /// The full multi-domain report at this gap.
    pub report: MultiDomainReport,
}

impl CouplingRow {
    /// Aggregate MPDUs delivered clean across both cells.
    pub fn delivered(&self) -> u64 {
        self.report.report.metrics.mpdus_ok
    }
}

/// Gap axis (m), dense across the hidden band.
fn gaps(mode: Mode) -> Vec<f64> {
    match mode {
        Mode::Smoke => vec![200.0, 80.0, 10.0],
        Mode::Quick | Mode::Full => vec![200.0, 120.0, 96.0, 88.0, 80.0, 72.0, 60.0, 30.0, 10.0],
    }
}

/// Stations per cell, scaled by mode.
fn stations_per_cell(mode: Mode) -> usize {
    match mode {
        Mode::Smoke => 2,
        Mode::Quick => 3,
        Mode::Full => 5,
    }
}

/// Two `k`-station cells with 2 m within-cell spacing, `gap_m` apart.
fn two_cell_topology(k: usize, gap_m: f64) -> Result<Topology> {
    let cell =
        |x0: f64| -> Vec<(f64, f64)> { (0..k).map(|i| (x0 + 2.0 * i as f64, 0.0)).collect() };
    Topology::builder()
        .cell(&cell(0.0))
        .cell(&cell(gap_m))
        .build()
}

/// Run the gap sweep.
pub fn rows(opts: &RunOpts) -> Result<Vec<CouplingRow>> {
    let k = stations_per_cell(opts.mode);
    let mut out = Vec::new();
    for gap in gaps(opts.mode) {
        let topo = two_cell_topology(k, gap)?;
        // Nearest cross pair: last station of cell 0, first of cell 1.
        let near = (k - 1, k);
        let cross_snr_db = topo
            .link_snr_db(near.0, near.1)
            .ok_or_else(|| Error::runtime("spatial topology must expose link SNR"))?;
        let regime = if topo.hears(near.0, near.1) {
            "sensed"
        } else if topo.interferes(near.0, near.1) {
            "hidden"
        } else {
            "isolated"
        };
        let span = opts.obs.timer("exp.multidomain.simulate").start();
        let report = Simulation::ieee1901(2 * k)
            .topology(topo)
            .horizon_us(opts.horizon_us())
            .seed(161)
            .domain_workers(2)
            .try_run_topology()?;
        drop(span);
        out.push(CouplingRow {
            gap_m: gap,
            cross_snr_db,
            regime,
            report,
        });
    }
    Ok(out)
}

/// Render the degradation curve (and enforce the regime ordering outside
/// Smoke mode).
pub fn run(opts: &RunOpts) -> Result<String> {
    let k = stations_per_cell(opts.mode);
    // Single-domain control: one cell of k stations on its own wire.
    let control = Simulation::ieee1901(k)
        .horizon_us(opts.horizon_us())
        .seed(161)
        .run();
    let data = rows(opts)?;
    let _render = opts.obs.timer("exp.multidomain.render").start();
    let mut t = Table::new(vec![
        "gap (m)",
        "x-SNR (dB)",
        "regime",
        "S aggregate",
        "MPDUs ok",
        "jammed",
        "defers",
        "vs 1-domain",
    ]);
    for r in &data {
        t.row(vec![
            format!("{:.0}", r.gap_m),
            format!("{:+.1}", r.cross_snr_db),
            r.regime.to_string(),
            fmt_prob(r.report.report.norm_throughput),
            r.delivered().to_string(),
            r.report.jammed_tx.to_string(),
            r.report.sensed_defers.to_string(),
            format!(
                "{:+.0}%",
                100.0 * (r.delivered() as f64 / control.metrics.mpdus_ok.max(1) as f64 - 1.0)
            ),
        ]);
    }

    let best = |regime: &str, f: fn(&CouplingRow) -> u64| {
        data.iter()
            .filter(|r| r.regime == regime)
            .map(f)
            .max()
            .unwrap_or(0)
    };
    let worst_hidden = data
        .iter()
        .filter(|r| r.regime == "hidden")
        .map(CouplingRow::delivered)
        .min()
        .unwrap_or(0);
    let best_isolated = best("isolated", CouplingRow::delivered);
    let best_sensed = best("sensed", CouplingRow::delivered);
    if opts.mode != Mode::Smoke {
        if !(best_isolated > best_sensed && best_sensed > worst_hidden) {
            return Err(Error::runtime(format!(
                "coupling regimes out of order: isolated {best_isolated} MPDUs \
                 must beat sensed sharing {best_sensed}, which must beat the \
                 hidden-terminal floor {worst_hidden}"
            )));
        }
        if data
            .iter()
            .any(|r| r.regime == "hidden" && r.report.jammed_tx == 0)
        {
            return Err(Error::runtime(
                "a hidden-band gap produced zero jammed transmissions",
            ));
        }
    }
    Ok(format!(
        "E16 — multi-domain coexistence: 2 cells × {k} stations, gap sweep\n\n{}\n\
         single-domain control ({k} stations): {} MPDUs ok, S = {}.\n\
         isolated cells reuse the wire (≈2× one domain); cells in sense range\n\
         time-share it (≈1×); the hidden band floors at {worst_hidden} MPDUs —\n\
         interference without carrier sense jams transmissions that selective\n\
         retransmission then repeats.\n",
        t.render(),
        control.metrics.mpdus_ok,
        fmt_prob(control.norm_throughput),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_end_to_end() {
        let out = run(&RunOpts::smoke()).unwrap();
        assert!(out.contains("multi-domain coexistence"));
        assert!(out.contains("isolated"));
        assert!(out.contains("hidden"));
        assert!(out.contains("sensed"));
    }

    #[test]
    fn gap_axis_covers_all_regimes() {
        for mode in [Mode::Smoke, Mode::Quick, Mode::Full] {
            let k = stations_per_cell(mode);
            let regimes: Vec<&str> = gaps(mode)
                .into_iter()
                .map(|g| {
                    let t = two_cell_topology(k, g).unwrap();
                    if t.hears(k - 1, k) {
                        "sensed"
                    } else if t.interferes(k - 1, k) {
                        "hidden"
                    } else {
                        "isolated"
                    }
                })
                .collect();
            for want in ["sensed", "hidden", "isolated"] {
                assert!(
                    regimes.contains(&want),
                    "{mode:?}: gap axis misses the {want} regime ({regimes:?})"
                );
            }
        }
    }

    #[test]
    fn rows_expose_cross_snr_monotone_in_gap() {
        let data = rows(&RunOpts::smoke()).unwrap();
        for w in data.windows(2) {
            assert!(
                w[1].cross_snr_db > w[0].cross_snr_db,
                "shrinking gap must raise cross-SNR"
            );
        }
    }
}
