//! E8 — channel errors and selective PB retransmission (the §4.1
//! mechanism the paper leaves unmodelled, exercised with the synthetic
//! PHY substitute).
//!
//! Sweep the per-PB error probability (derived from synthetic channel
//! margins), measure goodput and collision probability, and check the
//! closed form: with per-PB selective retransmission each extra round
//! costs one full transmission opportunity, so
//! `goodput(p) / goodput(0) = 1 / E[max of k geometrics]`.

use crate::RunOpts;
use plc_core::error::Result;
use plc_phy::error::{expected_rounds_for, PbErrorModel};
use plc_sim::Simulation;
use plc_stats::table::{fmt_prob, Table};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ErrorPoint {
    /// SNR margin of the synthetic link (dB).
    pub margin_db: f64,
    /// Resulting per-PB error probability.
    pub pb_error_prob: f64,
    /// Simulated goodput.
    pub goodput: f64,
    /// Closed-form prediction `g(0) / E[rounds]`.
    pub predicted: f64,
    /// Simulated collision probability (must not react to errors).
    pub collision_probability: f64,
}

/// Run the sweep at `n` stations.
pub fn sweep(opts: &RunOpts, n: usize) -> Vec<ErrorPoint> {
    let horizon = opts.horizon_us();
    let clean = Simulation::ieee1901(n).horizon_us(horizon).seed(8).run();
    let g0 = clean.metrics.goodput();
    [f64::INFINITY, 3.0, 2.0, 1.5, 1.0, 0.5]
        .iter()
        .map(|&margin| {
            let p = PbErrorModel::with_margin(margin).pb_error_prob();
            let r = Simulation::ieee1901(n)
                .pb_error_prob(p)
                .horizon_us(horizon)
                .seed(8)
                .run();
            ErrorPoint {
                margin_db: margin,
                pb_error_prob: p,
                goodput: r.metrics.goodput(),
                predicted: g0 / expected_rounds_for(p, 4),
                collision_probability: r.collision_probability,
            }
        })
        .collect()
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let span = opts.obs.timer("exp.errors.sweep").start();
    let pts = sweep(opts, 3);
    drop(span);
    let _render = opts.obs.timer("exp.errors.render").start();
    let mut t = Table::new(vec![
        "margin (dB)",
        "PB err prob",
        "goodput (sim)",
        "goodput (pred)",
        "collision p",
    ]);
    for p in &pts {
        t.row(vec![
            if p.margin_db.is_infinite() {
                "∞".into()
            } else {
                format!("{:.1}", p.margin_db)
            },
            fmt_prob(p.pb_error_prob),
            fmt_prob(p.goodput),
            fmt_prob(p.predicted),
            fmt_prob(p.collision_probability),
        ]);
    }
    Ok(format!(
        "E8 — channel errors with selective PB retransmission (N = 3)\n\n{}\n\
         Each retransmission round costs a full contention win, so goodput\n\
         falls as 1/E[rounds]; the collision probability column is flat —\n\
         selective ACKs keep channel errors and collisions distinct, exactly\n\
         the property §3.2's measurement methodology relies on.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_falls_and_matches_prediction() {
        let pts = sweep(&RunOpts::quick(), 3);
        assert!(pts.windows(2).all(|w| w[1].goodput <= w[0].goodput + 1e-9));
        for p in &pts {
            assert!(
                (p.goodput - p.predicted).abs() < 0.02,
                "margin {}: sim {} vs predicted {}",
                p.margin_db,
                p.goodput,
                p.predicted
            );
        }
    }

    #[test]
    fn collisions_unaffected_by_errors() {
        // The error sampling consumes RNG draws, so clean and noisy runs
        // are statistically independent samples of the same contention
        // process — the comparison tolerance must cover two standard
        // errors of each estimate, not zero.
        let pts = sweep(&RunOpts::quick(), 3);
        let base = pts[0].collision_probability;
        for p in &pts {
            assert!(
                (p.collision_probability - base).abs() < 0.035,
                "margin {}: collision probability drifted {} vs {base}",
                p.margin_db,
                p.collision_probability
            );
        }
    }
}
