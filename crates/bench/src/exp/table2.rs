//! Table 2 — the measured statistics `ΣCᵢ`, `ΣAᵢ` for N = 1…7, one test
//! per N, via the emulated testbed's ampstat workflow.
//!
//! The paper's published values (240 s tests, INT6300 devices):
//!
//! ```text
//! N   ΣCi        ΣAi
//! 1   2.50e1     1.6222e5
//! 2   1.2012e4   1.6202e5
//! 3   2.1390e4   1.5978e5
//! 4   2.8924e4   1.6259e5
//! 5   3.5990e4   1.6539e5
//! 6   4.1877e4   1.7144e5
//! 7   4.6989e4   1.7608e5
//! ```
//!
//! Absolute counts depend on the devices' PHY rate (their frames were
//! shorter than our paper-default 2542 µs `Ts`), so we compare *signatures*:
//! `ΣAᵢ` in the 1e5 range growing with N, and `ΣCᵢ/ΣAᵢ` on Figure 2's
//! curve.

use crate::RunOpts;
use plc_core::error::Result;
use plc_core::units::Microseconds;
use plc_stats::table::{fmt_prob, fmt_sci, Table};
use plc_testbed::CollisionExperiment;

/// The paper's Table 2 as `(ΣCi, ΣAi)` per N.
pub const PAPER: [(f64, f64); 7] = [
    (2.5000e1, 1.6222e5),
    (1.2012e4, 1.6202e5),
    (2.1390e4, 1.5978e5),
    (2.8924e4, 1.6259e5),
    (3.5990e4, 1.6539e5),
    (4.1877e4, 1.7144e5),
    (4.6989e4, 1.7608e5),
];

/// Measured `(ΣCi, ΣAi)` per N on the emulated testbed.
pub fn measure(test_secs: f64, seed: u64) -> Result<Vec<(u64, u64)>> {
    (1..=7usize)
        .map(|n| {
            let out = CollisionExperiment {
                duration: Microseconds::from_secs(test_secs),
                ..CollisionExperiment::paper(n, seed + n as u64)
            }
            .run()?;
            Ok((out.sum_collided, out.sum_acked))
        })
        .collect()
}

/// Render paper vs measured.
pub fn run(opts: &RunOpts) -> Result<String> {
    let secs = opts.test_secs();
    let span = opts.obs.timer("exp.table2.measure").start();
    let measured = measure(secs, 2024)?;
    drop(span);
    let _render = opts.obs.timer("exp.table2.render").start();
    let mut t = Table::new(vec![
        "N",
        "paper ΣCi",
        "paper ΣAi",
        "paper p",
        "ours ΣCi",
        "ours ΣAi",
        "ours p",
    ]);
    for (i, &(c, a)) in measured.iter().enumerate() {
        let (pc, pa) = PAPER[i];
        t.row(vec![
            (i + 1).to_string(),
            fmt_sci(pc),
            fmt_sci(pa),
            fmt_prob(pc / pa),
            fmt_sci(c as f64),
            fmt_sci(a as f64),
            fmt_prob(if a == 0 { 0.0 } else { c as f64 / a as f64 }),
        ]);
    }
    Ok(format!(
        "Table 2 — ΣCi, ΣAi per N ({secs:.0} s tests; paper used 240 s)\n\n{}\n\
         Absolute counts differ from the paper's (their PHY carried shorter\n\
         frames); the signatures match: ΣAi grows with N because collided\n\
         frames are still acknowledged, and ΣCi/ΣAi follows Figure 2.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios_reproduce_figure2() {
        // Internal consistency of the transcribed constants.
        let p2 = PAPER[1].0 / PAPER[1].1;
        let p7 = PAPER[6].0 / PAPER[6].1;
        assert!((p2 - 0.0741).abs() < 0.001);
        assert!((p7 - 0.2669).abs() < 0.001);
    }

    #[test]
    fn measured_signatures_match() {
        let m = measure(5.0, 9).unwrap();
        // ΣAi grows with N.
        assert!(m[6].1 > m[0].1, "ΣAi must grow: {:?}", m);
        // Ratio is monotone and lands near the paper's endpoints.
        let p2 = m[1].0 as f64 / m[1].1 as f64;
        let p7 = m[6].0 as f64 / m[6].1 as f64;
        assert!((p2 - 0.074).abs() < 0.04, "N=2 ratio {p2}");
        assert!((p7 - 0.267).abs() < 0.04, "N=7 ratio {p7}");
        // N=1 is (nearly) collision-free.
        let p1 = m[0].0 as f64 / (m[0].1.max(1) as f64);
        assert!(p1 < 0.01, "N=1 ratio {p1}");
    }
}
