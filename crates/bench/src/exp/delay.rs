//! E9 — MAC access delay vs number of stations.
//!
//! Delay is the flip side of the collision/throughput story: 1901's small
//! CW₀ gives quick access at low contention, while the deferral counter's
//! stage escalation stretches the tail as N grows. We measure the mean
//! time between a tagged station's consecutive successes (the saturated
//! proxy for head-of-line service time) and compare it with the coupled
//! model's renewal prediction `N · E[round time] / P(success round)`.

use crate::RunOpts;
use parking_lot::Mutex;
use plc_analysis::CoupledModel;
use plc_core::error::Result;
use plc_core::timing::MacTiming;
use plc_sim::trace::SuccessTrace;
use plc_sim::Simulation;
use plc_stats::summary::Welford;
use plc_stats::table::Table;
use std::sync::Arc;

/// One delay point (times in ms).
#[derive(Debug, Clone, Copy)]
pub struct DelayPoint {
    /// Station count.
    pub n: usize,
    /// Simulated mean inter-success time of a station (ms).
    pub sim_ms: f64,
    /// Coupled-model prediction (ms).
    pub model_ms: f64,
    /// Simulated standard deviation across stations (ms).
    pub spread_ms: f64,
    /// 95th percentile of station 0's inter-success times (ms).
    pub p95_ms: f64,
}

/// Model prediction of the mean inter-success time (µs).
pub fn model_intersuccess_us(model: &CoupledModel, n: usize, timing: &MacTiming) -> f64 {
    let fp = model.solve(n);
    let round_us = fp.idle_slots_per_round * timing.slot.as_micros()
        + fp.round_success_probability * timing.ts.as_micros()
        + (1.0 - fp.round_success_probability) * timing.tc.as_micros();
    n as f64 * round_us / fp.round_success_probability
}

/// The sweep.
pub fn points(opts: &RunOpts, ns: &[usize]) -> Vec<DelayPoint> {
    let model = CoupledModel::default_ca1();
    let timing = MacTiming::paper_default();
    ns.iter()
        .map(|&n| {
            let trace = Arc::new(Mutex::new(SuccessTrace::new()));
            let r = Simulation::ieee1901(n)
                .horizon_us(opts.horizon_us())
                .seed(17)
                .sink(trace.clone())
                .run();
            let mut per_station = Welford::new();
            for s in &r.metrics.per_station {
                per_station.push(s.intersuccess.mean());
            }
            // Tail of the tagged station's delays.
            let mut gaps = trace.lock().intersuccess_times_us(0);
            gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let p95 = if gaps.is_empty() {
                f64::NAN
            } else {
                gaps[((gaps.len() as f64 - 1.0) * 0.95).round() as usize]
            };
            DelayPoint {
                n,
                sim_ms: per_station.mean() / 1e3,
                model_ms: model_intersuccess_us(&model, n, &timing) / 1e3,
                spread_ms: if n > 1 {
                    per_station.std_dev() / 1e3
                } else {
                    0.0
                },
                p95_ms: p95 / 1e3,
            }
        })
        .collect()
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let span = opts.obs.timer("exp.delay.points").start();
    let pts = points(opts, &[1, 2, 3, 5, 7, 10, 15]);
    drop(span);
    let _render = opts.obs.timer("exp.delay.render").start();
    let mut t = Table::new(vec![
        "N",
        "sim (ms)",
        "model (ms)",
        "spread (ms)",
        "p95 (ms)",
    ]);
    for p in &pts {
        t.row(vec![
            p.n.to_string(),
            format!("{:.2}", p.sim_ms),
            format!("{:.2}", p.model_ms),
            format!("{:.2}", p.spread_ms),
            format!("{:.2}", p.p95_ms),
        ]);
    }
    Ok(format!(
        "E9 — mean MAC access delay (inter-success time of a tagged saturated\n\
         station) vs N, simulation vs coupled-model renewal prediction\n\n{}\n\
         Delay grows slightly faster than linearly in N (each extra station\n\
         adds both its airtime share and extra collisions); the model tracks\n\
         the simulation within a few percent.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_superlinearly_and_model_tracks() {
        let pts = points(&RunOpts::quick(), &[1, 2, 5, 10]);
        // Monotone growth.
        assert!(pts.windows(2).all(|w| w[1].sim_ms > w[0].sim_ms));
        // Superlinear: delay(10)/delay(1) > 10.
        assert!(
            pts[3].sim_ms / pts[0].sim_ms > 10.0,
            "ratio {}",
            pts[3].sim_ms / pts[0].sim_ms
        );
        // Model within 6% everywhere.
        for p in &pts {
            assert!(
                (p.sim_ms - p.model_ms).abs() / p.model_ms < 0.06,
                "N={}: sim {} vs model {}",
                p.n,
                p.sim_ms,
                p.model_ms
            );
        }
    }

    #[test]
    fn p95_reflects_short_term_unfairness() {
        // 1901's streaky wins give a heavy delay tail: p95 well above the
        // mean at moderate N.
        let pts = points(&RunOpts::quick(), &[5]);
        assert!(
            pts[0].p95_ms > 2.0 * pts[0].sim_ms,
            "p95 {} vs mean {}",
            pts[0].p95_ms,
            pts[0].sim_ms
        );
    }

    #[test]
    fn single_station_closed_form() {
        // Alone: E[intersuccess] = Ts + 3.5 σ ≈ 2.668 ms.
        let pts = points(&RunOpts::quick(), &[1]);
        assert!((pts[0].sim_ms - 2.668).abs() < 0.03, "{}", pts[0].sim_ms);
        assert!((pts[0].model_ms - 2.668).abs() < 0.001);
    }
}
