//! E10 — unsaturated operation: throughput and delay vs offered load.
//!
//! The paper's experiments are saturated; the simulator's traffic models
//! extend them. Sweeping a Poisson offered load through the saturation
//! point exposes the classic two-regime behaviour: below saturation the
//! carried load equals the offered load and access delay is small; past
//! the knee the network tops out at the saturated throughput (E1's value)
//! and queues blow up (arrivals are dropped at the queue cap).

use crate::RunOpts;
use plc_core::error::Result;
use plc_sim::{Simulation, TrafficModel};
use plc_stats::table::{fmt_prob, Table};

/// One load point.
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Offered load per station, as a fraction of channel payload capacity.
    pub offered: f64,
    /// Carried normalized throughput (network-wide).
    pub carried: f64,
    /// Collision probability.
    pub collision_probability: f64,
    /// Fraction of arrivals dropped at the queue.
    pub drop_fraction: f64,
}

/// Sweep offered load for `n` stations. `offered` is normalized so that
/// 1.0 ≈ one station alone saturating the channel payload.
pub fn sweep(opts: &RunOpts, n: usize, offered: &[f64]) -> Vec<LoadPoint> {
    let frame_us = 2050.0;
    // One frame delivers 2050 µs of payload airtime; offered load f per
    // station means arrivals at rate f / (n · frame_us) frames per µs so
    // the network-wide offered payload share is f.
    offered
        .iter()
        .map(|&f| {
            let rate = f / (n as f64 * frame_us);
            let report = Simulation::ieee1901(n)
                .traffic(TrafficModel::Poisson {
                    rate_per_us: rate,
                    queue_cap: 50,
                })
                .horizon_us(opts.horizon_us())
                .seed(33)
                .run();
            // The queue cap drops excess arrivals; the visible signature is
            // the carried-vs-offered shortfall.
            let carried = report.norm_throughput;
            let drop_fraction = ((f - carried) / f).max(0.0);
            LoadPoint {
                offered: f,
                carried,
                collision_probability: report.collision_probability,
                drop_fraction,
            }
        })
        .collect()
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let n = 5;
    let offered = [0.1, 0.3, 0.5, 0.7, 0.9, 1.2, 2.0];
    let span = opts.obs.timer("exp.load.sweep").start();
    let pts = sweep(opts, n, &offered);
    drop(span);
    let _render = opts.obs.timer("exp.load.render").start();
    let mut t = Table::new(vec!["offered load", "carried", "collision p", "shortfall"]);
    for p in &pts {
        t.row(vec![
            format!("{:.2}", p.offered),
            fmt_prob(p.carried),
            fmt_prob(p.collision_probability),
            fmt_prob(p.drop_fraction),
        ]);
    }
    // Saturated ceiling for reference.
    let sat = Simulation::ieee1901(n)
        .horizon_us(opts.horizon_us())
        .seed(33)
        .run()
        .norm_throughput;
    Ok(format!(
        "E10 — unsaturated operation, N = {n} Poisson stations\n\n{}\n\
         Below the knee carried ≈ offered and collisions are rare (stations\n\
         are mostly idle); past it the network pins at the saturated ceiling\n\
         (≈ {sat:.3} at N = {n}, E1's value) and the excess is dropped.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_regimes() {
        let opts = RunOpts::quick();
        let pts = sweep(&opts, 5, &[0.2, 0.5, 2.0]);
        // Light load: carried ≈ offered, few collisions.
        assert!(
            (pts[0].carried - 0.2).abs() < 0.03,
            "carried {}",
            pts[0].carried
        );
        assert!(pts[0].collision_probability < 0.08);
        // Heavy load: pinned at the saturated ceiling.
        let sat = Simulation::ieee1901(5)
            .horizon_us(opts.horizon_us())
            .seed(33)
            .run();
        assert!(
            (pts[2].carried - sat.norm_throughput).abs() < 0.04,
            "overloaded carried {} vs saturated {}",
            pts[2].carried,
            sat.norm_throughput
        );
        assert!(pts[2].drop_fraction > 0.5);
        // Collisions rise with load.
        assert!(pts[2].collision_probability > pts[0].collision_probability);
    }

    #[test]
    fn carried_is_monotone_in_offered() {
        let pts = sweep(&RunOpts::quick(), 3, &[0.1, 0.4, 0.8]);
        assert!(pts.windows(2).all(|w| w[1].carried >= w[0].carried - 0.01));
    }
}
