//! E6 — burst-size frequencies (§3.1).
//!
//! "Up to four MPDUs may be supported in a burst … It turns out that the
//! stations in the isolated experiments use bursts with 2 MPDUs." The
//! emulated devices use the same fixed-2 policy by default; this
//! experiment verifies the sniffer-side measurement recovers it, and
//! contrasts a channel-adaptive random policy.

use crate::RunOpts;
use plc_core::error::Result;
use plc_core::units::Microseconds;
use plc_sim::BurstPolicy;
use plc_stats::hist::Histogram;
use plc_stats::table::Table;
use plc_testbed::capture::burst_size_histogram;
use plc_testbed::tools::Faifa;
use plc_testbed::{group_bursts, PowerStrip, TestbedConfig};

/// Capture and histogram the burst sizes under a policy.
pub fn measure(opts: &RunOpts, policy: BurstPolicy, seed: u64) -> Result<Histogram> {
    let mut strip = PowerStrip::new(TestbedConfig {
        n_stations: 3,
        duration: Microseconds::from_secs(opts.test_secs().min(20.0)),
        seed,
        burst: policy,
        mme_rate_per_us: 0.0, // data bursts only, like the paper's isolation
        ..Default::default()
    });
    let faifa = Faifa::new(strip.bus());
    let d = strip.destination_mac();
    faifa.set_sniffer(d, true)?;
    strip.run_test();
    let captures = faifa.collect(d)?;
    Ok(burst_size_histogram(&group_bursts(&captures)?))
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let _span = opts.obs.timer("exp.bursts.capture").start();
    let int6300 = measure(opts, BurstPolicy::INT6300, 42)?;
    let adaptive = measure(
        opts,
        BurstPolicy::Random {
            weights: [0.1, 0.5, 0.25, 0.15],
        },
        42,
    )?;
    let mut t = Table::new(vec!["burst size", "INT6300 freq.", "adaptive freq."]);
    for size in 1..=4usize {
        t.row(vec![
            size.to_string(),
            format!("{:.3}", int6300.frequency(size)),
            format!("{:.3}", adaptive.frequency(size)),
        ]);
    }
    Ok(format!(
        "E6 — burst-size frequencies measured at the sniffer (§3.1)\n\n{}\n\
         The INT6300 policy reproduces the paper's observation (all bursts\n\
         of 2); the adaptive column models 'depends on channel conditions\n\
         and station capabilities'. Mean burst size: {:.2} vs {:.2}.\n",
        t.render(),
        int6300.mean(),
        adaptive.mean()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int6300_measures_all_twos() {
        let h = measure(&RunOpts::quick(), BurstPolicy::INT6300, 1).unwrap();
        assert!(h.total() > 50);
        assert_eq!(h.mode(), Some(2));
        assert!(
            h.frequency(2) > 0.999,
            "saturated stations with Fixed(2) produce only 2-MPDU bursts \
             (collisions included — the sniffer demultiplexes interleaved \
             delimiters by source): {:?}",
            (1..=4).map(|s| h.frequency(s)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_policy_spreads_sizes() {
        let h = measure(
            &RunOpts::quick(),
            BurstPolicy::Random {
                weights: [1.0, 1.0, 1.0, 1.0],
            },
            2,
        )
        .unwrap();
        for size in 1..=4 {
            assert!(
                h.frequency(size) > 0.1,
                "size {size} should appear ≈25% of the time: {}",
                h.frequency(size)
            );
        }
    }
}
