//! E7 — the modelling-assumption comparison: which analytical model of
//! the 1901 backoff process actually tracks the simulator?
//!
//! Studying the validity of such assumptions for 1901 is the subject of
//! the companion analysis the report cites as \[5\]. Three models are
//! compared against the reference simulator:
//!
//! * the **slot-decoupled** fixed point (Bianchi-style i.i.d. busy slots)
//!   — overestimates collisions at small N, because after every
//!   transmission all stations restart together with recent losers parked
//!   at larger windows (attempts are anti-correlated);
//! * the **fresh-draw round** mean-field — underestimates at larger N,
//!   because discarding deferral survivors' residual backoffs spreads
//!   their attempts too thin;
//! * the **coupled champion/residual** model — tracks the simulator at
//!   every N and is the workspace's primary analysis.

use crate::RunOpts;
use plc_analysis::{CoupledModel, Model1901, RoundModel};
use plc_core::error::{Error, Result};
use plc_sim::PaperSim;
use plc_stats::table::{fmt_prob, Table};

/// One comparison row: `(n, sim, decoupled, round, coupled)`.
pub type Row = (usize, f64, f64, f64, f64);

/// All comparison rows for the swept N values.
pub fn rows(opts: &RunOpts) -> Result<Vec<Row>> {
    let decoupled = Model1901::default_ca1();
    let round = RoundModel::default_ca1();
    let coupled = CoupledModel::default_ca1();
    (2..=7usize)
        .map(|n| {
            let sim = PaperSim::with_n_and_time(n, opts.horizon_us())
                .run(70 + n as u64)
                .map_err(|e| Error::runtime(format!("models reference sim N={n}: {e}")))?
                .collision_pr;
            Ok((
                n,
                sim,
                decoupled.solve(n).collision_probability,
                round.solve(n).collision_probability,
                coupled.solve(n).collision_probability,
            ))
        })
        .collect()
}

/// Render the comparison.
pub fn run(opts: &RunOpts) -> Result<String> {
    let span = opts.obs.timer("exp.models.rows").start();
    let data = rows(opts)?;
    drop(span);
    let _render = opts.obs.timer("exp.models.render").start();
    let mut t = Table::new(vec![
        "N",
        "simulation",
        "slot-decoupled",
        "round (fresh)",
        "coupled",
    ]);
    let mut errs = [0.0f64; 3];
    for &(n, sim, d, r, c) in &data {
        t.row(vec![
            n.to_string(),
            fmt_prob(sim),
            fmt_prob(d),
            fmt_prob(r),
            fmt_prob(c),
        ]);
        errs[0] = errs[0].max((d - sim).abs());
        errs[1] = errs[1].max((r - sim).abs());
        errs[2] = errs[2].max((c - sim).abs());
    }
    Ok(format!(
        "E7 — modelling assumptions: collision probability vs simulation\n\n{}\n\
         max |error|: slot-decoupled {:.4}, round {:.4}, coupled {:.4}.\n\
         The naive decoupling overestimates at small N (synchronized restarts\n\
         anti-correlate attempts); dropping backoff residuals underestimates at\n\
         large N; the coupled model keeps both effects and stays on the curve.\n",
        t.render(),
        errs[0],
        errs[1],
        errs[2]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_model_dominates_on_max_error() {
        // Pointwise the simpler models can luck into a crossing (the round
        // model's bias flips sign near N = 4); the right comparison is the
        // worst case over the sweep.
        let data = rows(&RunOpts::quick()).unwrap();
        let max_err =
            |f: &dyn Fn(&Row) -> f64| data.iter().map(|row| f(row).abs()).fold(0.0f64, f64::max);
        let ed = max_err(&|&(_, sim, d, _, _)| d - sim);
        let er = max_err(&|&(_, sim, _, r, _)| r - sim);
        let ec = max_err(&|&(_, sim, _, _, c)| c - sim);
        assert!(ec < ed, "coupled max err {ec} vs decoupled {ed}");
        assert!(ec < er, "coupled max err {ec} vs round {er}");
        assert!(ec < 0.02, "coupled max err {ec}");
    }

    #[test]
    fn known_bias_directions() {
        let data = rows(&RunOpts::quick()).unwrap();
        let (_, sim2, d2, _, _) = data[0]; // N = 2
        let (_, sim7, _, r7, _) = data[5]; // N = 7
        assert!(d2 > sim2, "decoupled overestimates at N=2");
        assert!(r7 < sim7, "fresh-draw round underestimates at N=7");
    }
}
