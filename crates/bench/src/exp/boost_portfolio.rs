//! E17 — closed-loop configuration boosting against a scenario
//! portfolio (`plc-boost`).
//!
//! Where E3 (`exp::boost`) ranks candidate tables analytically at one
//! saturated operating point, this experiment runs the full closed
//! loop: a mean-field screen over the candidate space, crash-resumable
//! slotted confirm rungs over a weighted scenario portfolio
//! (saturated, Poisson-unsaturated, multi-domain cells), successive
//! halving between rungs, and a Pareto verdict over (throughput ↑,
//! Jain fairness ↑, p99 access delay ↓) against the IEEE 1901 CA1
//! default. The rendered table is the finalist field with the front
//! and the recommendation marked.
//!
//! Smoke/Quick modes run the `tiny` space on the `smoke` portfolio so
//! the loop is exercised in seconds; Full mode searches the `default`
//! space against the `default` portfolio — the production
//! recommendation, equivalent to `experiments boost run`.

use crate::{Mode, RunOpts};
use plc_boost::{BoostConfig, BoostRun};
use plc_core::error::Result;
use plc_stats::table::{fmt_prob, Table};

/// Run the boosting loop and render the finalist field.
pub fn run(opts: &RunOpts) -> Result<String> {
    let dir = std::env::temp_dir().join(format!("plc_bench_boost_e17_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = match opts.mode {
        Mode::Full => BoostConfig::new(&dir),
        _ => BoostConfig::smoke(&dir),
    };
    if opts.mode == Mode::Smoke {
        cfg.base_horizon_us = 1.0e5;
        cfg.rungs = 1;
    }
    let timer = opts.obs.timer("exp.boost-portfolio.search");
    let span = timer.start();
    let report = BoostRun::create(cfg.clone())?.registry(&opts.obs).run()?;
    drop(span);
    let _ = std::fs::remove_dir_all(&dir);

    let artifact = &report.artifact;
    let mut t = Table::new(vec![
        "schedule",
        "cw",
        "throughput",
        "jain",
        "p99 delay (ms)",
        "score",
        "verdict",
    ]);
    for o in &artifact.finalists {
        let mut verdict = String::new();
        if artifact.pareto.contains(&o.label) {
            verdict.push_str("pareto");
        }
        if o.label == artifact.recommended.candidate.label {
            verdict.push_str(" ★recommended");
        }
        if o.label == artifact.baseline.label {
            verdict.push_str(" (baseline)");
        }
        t.row(vec![
            o.label.clone(),
            format!("{:?}", o.cw),
            fmt_prob(o.throughput),
            fmt_prob(o.jain_fairness),
            o.p99_delay_us
                .map(|us| format!("{:.2}", us / 1.0e3))
                .unwrap_or_else(|| "tail>walk".to_string()),
            format!("{:+.3}", o.score),
            verdict.trim().to_string(),
        ]);
    }
    let rec = &artifact.recommended;
    let beaten = rec.beats_baseline.count();
    Ok(format!(
        "E17 — closed-loop boosting: space '{}' × portfolio '{}', {} rung(s), seed {}\n{}\n\
         recommended '{}' beats the CA1 default on {beaten}/3 objectives \
         (throughput {}, fairness {}, p99 delay {})\n",
        artifact.space,
        artifact.portfolio,
        artifact.rungs,
        artifact.seed,
        t.render(),
        rec.candidate.label,
        rec.beats_baseline.throughput,
        rec.beats_baseline.fairness,
        rec.beats_baseline.p99_delay,
    ))
}
