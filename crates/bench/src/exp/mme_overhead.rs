//! E5 — management-message overhead via the sniffer methodology (§3.3).
//!
//! "This overhead is computed by dividing the number of bursts
//! corresponding to MMEs by the number of bursts corresponding to data
//! frames" — bursts, not MPDUs, because bursts are what pay the CSMA/CA
//! overhead. Data is told from management by the SoF LinkID priority.

use crate::RunOpts;
use plc_core::error::Result;
use plc_core::units::Microseconds;
use plc_stats::table::{fmt_prob, Table};
use plc_testbed::tools::Faifa;
use plc_testbed::{group_bursts, mme_overhead, PowerStrip, TestbedConfig};

/// Measured overhead at one configuration.
#[derive(Debug, Clone, Copy)]
pub struct OverheadPoint {
    /// Transmitting stations.
    pub n: usize,
    /// MME rate per device (frames/µs).
    pub mme_rate: f64,
    /// Data bursts captured.
    pub data_bursts: usize,
    /// MME bursts captured.
    pub mme_bursts: usize,
    /// MME bursts per data burst.
    pub overhead: f64,
}

/// Run the sniffer capture and compute the overhead.
pub fn measure(opts: &RunOpts, n: usize, mme_rate: f64, seed: u64) -> Result<OverheadPoint> {
    let mut strip = PowerStrip::new(TestbedConfig {
        n_stations: n,
        duration: Microseconds::from_secs(opts.test_secs().min(30.0)),
        seed,
        mme_rate_per_us: mme_rate,
        ..Default::default()
    });
    let faifa = Faifa::new(strip.bus());
    let d = strip.destination_mac();
    faifa.set_sniffer(d, true)?;
    strip.run_test();
    let captures = faifa.collect(d)?;
    let bursts = group_bursts(&captures)?;
    let data = bursts.iter().filter(|b| b.is_data()).count();
    let mme = bursts.iter().filter(|b| !b.is_data()).count();
    Ok(OverheadPoint {
        n,
        mme_rate,
        data_bursts: data,
        mme_bursts: mme,
        overhead: mme_overhead(&bursts),
    })
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let _span = opts.obs.timer("exp.mme_overhead.capture").start();
    let mut t = Table::new(vec![
        "N",
        "MME rate (1/s/dev)",
        "data bursts",
        "MME bursts",
        "overhead",
    ]);
    for &(n, rate) in &[(2usize, 2e-6), (2, 1e-5), (5, 2e-6), (5, 1e-5)] {
        let p = measure(opts, n, rate, 900 + n as u64)?;
        t.row(vec![
            n.to_string(),
            format!("{:.0}", rate * 1e6),
            p.data_bursts.to_string(),
            p.mme_bursts.to_string(),
            fmt_prob(p.overhead),
        ]);
    }
    Ok(format!(
        "E5 — MME overhead over bursts (§3.3 methodology, sniffer at D)\n\n{}\n\
         Saturated data dominates; the management plane costs a few bursts\n\
         per hundred data bursts and grows linearly with the MME rate.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_scales_with_mme_rate() {
        let opts = RunOpts::quick();
        let low = measure(&opts, 2, 2e-6, 1).unwrap();
        let high = measure(&opts, 2, 2e-5, 1).unwrap();
        assert!(low.overhead > 0.0);
        assert!(
            high.overhead > 2.0 * low.overhead,
            "10× the MME rate must raise the overhead well over 2×: {} vs {}",
            low.overhead,
            high.overhead
        );
    }

    #[test]
    fn zero_rate_means_zero_overhead() {
        let p = measure(&RunOpts::quick(), 2, 0.0, 2).unwrap();
        assert_eq!(p.mme_bursts, 0);
        assert_eq!(p.overhead, 0.0);
        assert!(p.data_bursts > 0);
    }

    use plc_core::priority::Priority;

    #[test]
    fn classification_is_by_priority() {
        // All captured MME bursts carry CA2/CA3, data bursts CA0/CA1 —
        // verified indirectly through the BurstRecord predicate used by
        // measure(); here we double-check a raw capture.
        let mut strip = PowerStrip::new(TestbedConfig {
            n_stations: 2,
            duration: Microseconds::from_secs(5.0),
            seed: 3,
            ..Default::default()
        });
        let faifa = Faifa::new(strip.bus());
        let d = strip.destination_mac();
        faifa.set_sniffer(d, true).unwrap();
        strip.run_test();
        let captures = faifa.collect(d).unwrap();
        for b in group_bursts(&captures).unwrap() {
            if b.is_data() {
                assert!(matches!(b.priority, Priority::CA0 | Priority::CA1));
            } else {
                assert!(matches!(b.priority, Priority::CA2 | Priority::CA3));
            }
        }
    }
}
