//! E13 — tone-map adaptation: the MME rate as a function of channel
//! conditions (§4.1's "their arrival rate depends also on the channel
//! conditions", closed-loop).

use crate::RunOpts;
use plc_core::error::Result;
use plc_core::units::Microseconds;
use plc_stats::table::{fmt_prob, Table};
use plc_testbed::adaptation::{run as run_adaptation, AdaptationConfig};

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let _span = opts.obs.timer("exp.adaptation.runs").start();
    let duration = Microseconds::from_secs(opts.test_secs().min(60.0));
    let mut t = Table::new(vec![
        "drift (dB/s)",
        "updates/s",
        "goodput (adapt)",
        "goodput (frozen)",
        "frozen final PB err",
    ]);
    for &drift in &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let base = AdaptationConfig {
            drift_db_per_s: drift,
            duration,
            ..Default::default()
        };
        let adapt = run_adaptation(&base);
        let frozen = run_adaptation(&AdaptationConfig {
            adapt: false,
            ..base
        });
        t.row(vec![
            format!("{drift:.2}"),
            format!("{:.2}", adapt.update_rate_per_s),
            fmt_prob(adapt.goodput),
            fmt_prob(frozen.goodput),
            fmt_prob(frozen.final_mean_error_prob),
        ]);
    }
    Ok(format!(
        "E13 — tone-map adaptation under channel drift (N = 3, 3 dB renegotiated\n\
         margin, 5% firmware error-rate trigger)\n\n{}\n\
         The tone-map MME rate is an *output* of channel dynamics: it scales\n\
         with the drift rate, exactly the dependence §4.1 describes. With the\n\
         loop frozen, goodput decays toward the error-dominated floor.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_monotone_update_rates() {
        let s = run(&RunOpts::quick()).unwrap();
        assert!(s.contains("updates/s"));
        // Extract the updates/s column and check monotonicity in drift.
        let rates: Vec<f64> = s
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with("0.")
                    || t.starts_with("1.")
                    || t.starts_with("2.")
                    || t.starts_with("4.")
            })
            .filter_map(|l| l.split_whitespace().nth(1).and_then(|x| x.parse().ok()))
            .collect();
        assert!(rates.len() >= 4, "parsed {rates:?} from:\n{s}");
        assert!(
            rates.windows(2).all(|w| w[1] >= w[0] - 0.1),
            "rates {rates:?}"
        );
        assert_eq!(rates[0], 0.0, "no drift → no updates");
    }
}
