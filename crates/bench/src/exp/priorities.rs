//! E2 — the CA0–CA3 priority classes (Table 1's two columns) under the
//! explicit priority-resolution engine.
//!
//! Two questions the multi-class engine answers:
//!
//! 1. *within-class performance*: the CA2/CA3 table caps CW at 32, so at
//!    larger N the delay-sensitive table collides more than CA0/CA1 —
//!    the cost of bounded access delay;
//! 2. *cross-class precedence*: strict starvation under saturation, and
//!    near-zero impact of light high-priority traffic (the paper's MME
//!    background).

use crate::RunOpts;
use plc_analysis::CoupledModel;
use plc_core::config::CsmaConfig;
use plc_core::error::Result;
use plc_core::priority::Priority;
use plc_core::units::Microseconds;
use plc_mac::Backoff1901;
use plc_sim::multiclass::{ClassStationSpec, MultiClassConfig, MultiClassEngine};
use plc_sim::TrafficModel;
use plc_stats::table::{fmt_prob, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Collision probability of N same-class saturated stations, per class
/// table, simulated with explicit PRS plus predicted by the model.
pub fn class_collision_curves(opts: &RunOpts) -> Vec<(usize, f64, f64, f64, f64)> {
    let ca01 = CoupledModel::new(CsmaConfig::ieee1901_ca01());
    let ca23 = CoupledModel::new(CsmaConfig::ieee1901_ca23());
    (1..=7usize)
        .map(|n| {
            let sim = |prio: Priority, seed: u64| {
                let mut rng = SmallRng::seed_from_u64(seed);
                let stations: Vec<_> = (0..n)
                    .map(|_| {
                        ClassStationSpec::new(
                            Backoff1901::new(CsmaConfig::ieee1901_for(prio), &mut rng),
                            prio,
                            TrafficModel::Saturated,
                        )
                    })
                    .collect();
                let cfg = MultiClassConfig {
                    horizon: Microseconds::new(opts.horizon_us()),
                    ..Default::default()
                };
                let mut e = MultiClassEngine::new(cfg, stations, seed);
                e.run().collision_probability()
            };
            (
                n,
                sim(Priority::CA1, 30 + n as u64),
                ca01.solve(n).collision_probability,
                sim(Priority::CA3, 60 + n as u64),
                ca23.solve(n).collision_probability,
            )
        })
        .collect()
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let span = opts.obs.timer("exp.priorities.curves").start();
    let mut t = Table::new(vec!["N", "CA1 sim", "CA1 model", "CA3 sim", "CA3 model"]);
    for (n, s01, m01, s23, m23) in class_collision_curves(opts) {
        t.row(vec![
            n.to_string(),
            fmt_prob(s01),
            fmt_prob(m01),
            fmt_prob(s23),
            fmt_prob(m23),
        ]);
    }

    drop(span);
    let _cross = opts.obs.timer("exp.priorities.cross_class").start();
    // Cross-class scenario: 2×CA1 saturated + 1×CA2 light.
    let mut rng = SmallRng::seed_from_u64(5);
    let stations = vec![
        ClassStationSpec::new(
            Backoff1901::new(CsmaConfig::ieee1901_ca01(), &mut rng),
            Priority::CA1,
            TrafficModel::Saturated,
        ),
        ClassStationSpec::new(
            Backoff1901::new(CsmaConfig::ieee1901_ca01(), &mut rng),
            Priority::CA1,
            TrafficModel::Saturated,
        ),
        ClassStationSpec::new(
            Backoff1901::new(CsmaConfig::ieee1901_ca23(), &mut rng),
            Priority::CA2,
            TrafficModel::Poisson {
                rate_per_us: 1e-4,
                queue_cap: 32,
            },
        ),
    ];
    let cfg = MultiClassConfig {
        horizon: Microseconds::new(opts.horizon_us()),
        ..Default::default()
    };
    let mut e = MultiClassEngine::new(cfg, stations, 5);
    e.run();
    let by_class = e.successes_by_class();

    Ok(format!(
        "E2 — priority classes (Table 1 columns) under explicit priority resolution\n\n\
         Per-class collision probability, N same-class saturated stations:\n\n{}\n\
         The CA2/CA3 table (CW capped at 32) collides more at large N — bounded\n\
         windows buy bounded access delay at the cost of collisions.\n\n\
         Cross-class: 2×CA1 saturated + 1×CA2 Poisson(100 frames/s):\n\
         CA1 successes = {}, CA2 successes = {} — light high-priority traffic\n\
         preempts per-frame but barely dents CA1 throughput.\n",
        t.render(),
        by_class[1],
        by_class[2],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ca23_collides_more_at_every_n() {
        // The CA2/CA3 table halves the stage-2/3 windows, so it collides
        // more — visibly even at N = 2, where a loser cascades into the
        // capped stages within a few busy rounds.
        let rows = class_collision_curves(&RunOpts::quick());
        for &(n, s01, m01, s23, m23) in &rows[1..] {
            assert!(s23 > s01, "N={n}: CA3 sim {s23} vs CA1 sim {s01}");
            assert!(m23 > m01, "N={n}: CA3 model {m23} vs CA1 model {m01}");
            // Model tracks the PRS-engine simulation per class.
            assert!(
                (s01 - m01).abs() < 0.035,
                "N={n}: CA1 sim {s01} vs model {m01}"
            );
            assert!(
                (s23 - m23).abs() < 0.035,
                "N={n}: CA3 sim {s23} vs model {m23}"
            );
        }
    }
}
