//! Figure 1 — the time evolution of the backoff process with two
//! saturated stations, as a contention-event table.
//!
//! Regenerates the paper's worked example from a live simulation: per
//! contention event, the CW/DC/BC triplet of both stations, showing the
//! deferral-counter jump ("observe the change in CWi when a station senses
//! the medium busy and has DC = 0") and the winner resetting to CW = 8.

use crate::RunOpts;
use plc_core::error::Result;
use plc_mac::process::BackoffSnapshot;
use plc_mac::Backoff1901;
use plc_sim::engine::{EngineConfig, SlottedEngine, StationSpec};
use plc_sim::StepOutcome;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One row of the regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Event time (µs).
    pub t_us: f64,
    /// What happened ("idle", "tx A", "tx B", "collision").
    pub event: String,
    /// Station A's counters after the event.
    pub a: BackoffSnapshot,
    /// Station B's counters after the event.
    pub b: BackoffSnapshot,
}

/// Simulate and collect the first `rows` contention events.
pub fn trace(rows: usize, seed: u64) -> Vec<TraceRow> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let stations = vec![
        StationSpec::saturated(Backoff1901::default_ca1(&mut rng)),
        StationSpec::saturated(Backoff1901::default_ca1(&mut rng)),
    ];
    let mut engine = SlottedEngine::new(EngineConfig::paper_default(), stations, seed);
    let mut out = Vec::with_capacity(rows);
    while out.len() < rows {
        let t = engine.time().as_micros();
        let event = match engine.step() {
            StepOutcome::Idle => "idle".to_string(),
            StepOutcome::Success { station, .. } => {
                format!("tx {}", if station == 0 { "A" } else { "B" })
            }
            StepOutcome::Collision { .. } => "collision".to_string(),
        };
        out.push(TraceRow {
            t_us: t,
            event,
            a: engine.snapshot(0),
            b: engine.snapshot(1),
        });
    }
    out
}

/// Render the figure as a table.
pub fn run(opts: &RunOpts) -> Result<String> {
    let span = opts.obs.timer("exp.figure1.trace").start();
    let rows = trace(30, 1901);
    drop(span);
    let _render = opts.obs.timer("exp.figure1.render").start();
    let mut s = String::from("Figure 1 — backoff evolution, 2 saturated stations (CA1 table)\n\n");
    s.push_str(&format!(
        "{:>10}  {:<10}  {:>12}  {:>12}\n{}\n",
        "time (µs)",
        "event",
        "A: CW DC BC",
        "B: CW DC BC",
        "-".repeat(52)
    ));
    let fmt = |snap: &BackoffSnapshot| {
        format!(
            "{:>3} {:>2} {:>2}",
            snap.cw,
            snap.dc.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
            snap.bc
        )
    };
    for r in &rows {
        s.push_str(&format!(
            "{:>10.0}  {:<10}  {:>12}  {:>12}\n",
            r.t_us,
            r.event,
            fmt(&r.a),
            fmt(&r.b)
        ));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let a = trace(20, 7);
        let b = trace(20, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].t_us < w[1].t_us));
    }

    #[test]
    fn trace_shows_figure1_dynamics() {
        // Long enough to contain a transmission and a deferral jump.
        let rows = trace(200, 1901);
        assert!(
            rows.iter().any(|r| r.event.starts_with("tx")),
            "some transmission"
        );
        // After any tx by A, A is back at CW = 8 (stage 0).
        for w in rows.windows(2) {
            if w[0].event == "tx A" {
                assert_eq!(w[0].a.cw, 8, "winner resets to stage 0");
            }
        }
        // Some row must show a station above stage 0 (CW > 8) — losers
        // escalate, often without transmitting.
        assert!(rows.iter().any(|r| r.b.cw > 8 || r.a.cw > 8));
    }
}
