//! E15 — backend cross-validation: slotted engine vs mean-field fixed
//! point over an N × configuration grid, plus the fleet-scale
//! determinism check.
//!
//! The disagreement report compares the stochastic engine's replicated
//! collision probability and throughput against the deterministic
//! mean-field backend at every grid point. The acceptance bar is the
//! *documented* decoupling tolerance
//! ([`plc_analysis::gamma_tolerance`] /
//! [`plc_analysis::throughput_tolerance`]) widened by the slotted CI
//! half-width — in Quick and Full modes a point outside its envelope
//! fails the experiment; Smoke horizons are statistically meaningless,
//! so Smoke only exercises the pipeline.
//!
//! The fleet block runs many 10k-station mean-field domains on the
//! batch pool with 1 worker and with the default pool, and requires the
//! serialized reports to be **byte-identical** — the deterministic
//! backend's answer may not depend on scheduling.

use crate::{Mode, RunOpts};
use plc_analysis::{gamma_tolerance, throughput_tolerance};
use plc_core::config::CsmaConfig;
use plc_core::error::{Error, Result};
use plc_sim::runner::ReplicationSummary;
use plc_sim::{Backend, BatchRunner, Simulation};
use plc_stats::table::{fmt_prob, Table};

/// One grid point of the disagreement report.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Configuration label.
    pub config: String,
    /// Station count.
    pub n: usize,
    /// Slotted-engine summary over the mode's replications.
    pub slotted: ReplicationSummary,
    /// Mean-field collision probability (the fixed-point `p`).
    pub mf_gamma: f64,
    /// Mean-field normalized throughput.
    pub mf_throughput: f64,
    /// Documented γ tolerance at this N, plus the slotted CI half-width.
    pub gamma_envelope: f64,
    /// Documented throughput tolerance at this N, plus the CI half-width.
    pub throughput_envelope: f64,
}

impl BackendRow {
    /// Gap between the backends' collision probabilities.
    pub fn gamma_gap(&self) -> f64 {
        (self.slotted.collision_probability.mean - self.mf_gamma).abs()
    }

    /// Gap between the backends' normalized throughputs.
    pub fn throughput_gap(&self) -> f64 {
        (self.slotted.norm_throughput.mean - self.mf_throughput).abs()
    }

    /// Whether both gaps sit inside their envelopes.
    pub fn within_envelope(&self) -> bool {
        self.gamma_gap() <= self.gamma_envelope && self.throughput_gap() <= self.throughput_envelope
    }
}

/// The grid's configuration axis: both 1901 priority groups plus the
/// deferral-disabled (DCF-like) table, all contending under the 1901
/// engine.
fn configs() -> Vec<(&'static str, CsmaConfig)> {
    vec![
        ("CA1", CsmaConfig::ieee1901_ca01()),
        ("CA3", CsmaConfig::ieee1901_ca23()),
        ("DC-off", CsmaConfig::dcf_like(8, 4).expect("valid table")),
    ]
}

/// The grid's N axis, scaled by mode (Smoke is a pipeline exercise;
/// Quick caps at N=50 to stay CI-friendly; Full reaches N=200).
fn station_counts(mode: Mode) -> Vec<usize> {
    match mode {
        Mode::Smoke => vec![3, 5],
        Mode::Quick => vec![5, 10, 20, 50],
        Mode::Full => vec![5, 10, 50, 200],
    }
}

/// A CI half-width that is safe to add to an envelope: NaN (too few
/// replications to estimate) contributes nothing.
fn ci_or_zero(hw: f64) -> f64 {
    if hw.is_finite() {
        hw
    } else {
        0.0
    }
}

/// Evaluate the whole grid on both backends.
pub fn rows(opts: &RunOpts) -> Result<Vec<BackendRow>> {
    let mut out = Vec::new();
    for (label, config) in configs() {
        for n in station_counts(opts.mode) {
            let span = opts.obs.timer("exp.validate-backends.slotted").start();
            let slotted = ReplicationSummary::of(
                &Simulation::ieee1901(n)
                    .config(config.clone())
                    .horizon_us(opts.horizon_us())
                    .seed(151)
                    .run_repeated(opts.repeats()),
            );
            drop(span);
            let span = opts.obs.timer("exp.validate-backends.meanfield").start();
            let mf = Simulation::ieee1901(n)
                .config(config.clone())
                .backend(Backend::MeanField)
                .horizon_us(opts.horizon_us())
                .try_run()
                .map_err(|e| Error::runtime(format!("mean-field {label} N={n}: {e}")))?;
            drop(span);
            let gamma_envelope =
                gamma_tolerance(n) + ci_or_zero(slotted.collision_probability.ci95_half_width);
            let throughput_envelope =
                throughput_tolerance(n) + ci_or_zero(slotted.norm_throughput.ci95_half_width);
            out.push(BackendRow {
                config: label.to_string(),
                n,
                slotted,
                mf_gamma: mf.collision_probability,
                mf_throughput: mf.norm_throughput,
                gamma_envelope,
                throughput_envelope,
            });
        }
    }
    Ok(out)
}

/// Fleet-scale determinism check: `domains` × 10k-station mean-field
/// domains on the batch pool, 1 worker vs the default pool, serialized
/// reports compared byte for byte. Returns the rendered summary line.
pub fn fleet_check(opts: &RunOpts) -> Result<String> {
    let domains = match opts.mode {
        Mode::Smoke => 4usize,
        Mode::Quick | Mode::Full => 100,
    };
    let sims = || -> Vec<Simulation> {
        (0..domains)
            .map(|_| {
                Simulation::ieee1901(10_000)
                    .backend(Backend::MeanField)
                    .horizon_us(1.0e8)
            })
            .collect()
    };
    let _span = opts.obs.timer("exp.validate-backends.fleet").start();
    let started = std::time::Instant::now();
    let pooled = BatchRunner::new().run_sims(sims());
    let wall = started.elapsed().as_secs_f64();
    let serial = BatchRunner::new().workers(1).run_sims(sims());
    let a = serde_json::to_string(&pooled).map_err(|e| Error::runtime(format!("encode: {e}")))?;
    let b = serde_json::to_string(&serial).map_err(|e| Error::runtime(format!("encode: {e}")))?;
    if a != b {
        return Err(Error::runtime(
            "fleet mean-field reports differ between 1 worker and the default pool",
        ));
    }
    Ok(format!(
        "fleet: {domains} domains × 10k stations ({} total) solved in {wall:.2} s \
         on the default pool; reports byte-identical across worker counts.",
        domains * 10_000
    ))
}

/// Render the disagreement report (and enforce the envelopes outside
/// Smoke mode).
pub fn run(opts: &RunOpts) -> Result<String> {
    let data = rows(opts)?;
    let fleet = fleet_check(opts)?;
    let _render = opts.obs.timer("exp.validate-backends.render").start();
    let mut t = Table::new(vec![
        "config",
        "N",
        "γ slotted",
        "γ mf",
        "Δγ",
        "γ tol",
        "S slotted",
        "S mf",
        "ΔS",
        "S tol",
        "verdict",
    ]);
    let mut failures = Vec::new();
    for r in &data {
        let ok = r.within_envelope();
        t.row(vec![
            r.config.clone(),
            r.n.to_string(),
            fmt_prob(r.slotted.collision_probability.mean),
            fmt_prob(r.mf_gamma),
            fmt_prob(r.gamma_gap()),
            fmt_prob(r.gamma_envelope),
            fmt_prob(r.slotted.norm_throughput.mean),
            fmt_prob(r.mf_throughput),
            fmt_prob(r.throughput_gap()),
            fmt_prob(r.throughput_envelope),
            if ok { "ok" } else { "OUT" }.to_string(),
        ]);
        if !ok {
            failures.push(format!(
                "{} N={}: Δγ={:.4} (tol {:.4}), ΔS={:.4} (tol {:.4})",
                r.config,
                r.n,
                r.gamma_gap(),
                r.gamma_envelope,
                r.throughput_gap(),
                r.throughput_envelope
            ));
        }
    }
    // Smoke horizons produce noise; only Quick/Full statistics are held
    // to the documented envelope.
    if opts.mode != Mode::Smoke && !failures.is_empty() {
        return Err(Error::runtime(format!(
            "backend disagreement beyond the documented envelope: {}",
            failures.join("; ")
        )));
    }
    let max_gamma = data.iter().map(BackendRow::gamma_gap).fold(0.0, f64::max);
    let max_thr = data
        .iter()
        .map(BackendRow::throughput_gap)
        .fold(0.0, f64::max);
    Ok(format!(
        "E15 — backend cross-validation: slotted vs mean-field\n\n{}\n\
         max |Δγ| = {:.4}, max |ΔS| = {:.4} over {} grid points.\n{}\n\
         Envelope = documented decoupling tolerance + slotted 95% CI half-width;\n\
         the decoupling approximation degrades at small N (synchronized restarts\n\
         anti-correlate attempts), which the N-dependent tolerance encodes.\n",
        t.render(),
        max_gamma,
        max_thr,
        data.len(),
        fleet
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_end_to_end() {
        let out = run(&RunOpts::smoke()).unwrap();
        assert!(out.contains("backend cross-validation"));
        assert!(out.contains("byte-identical"));
        // 3 configs × 2 Ns in smoke mode.
        assert!(out.contains("6 grid points"));
    }

    #[test]
    fn grid_scales_with_mode() {
        assert_eq!(station_counts(Mode::Smoke).len(), 2);
        assert_eq!(station_counts(Mode::Quick).len(), 4);
        assert_eq!(station_counts(Mode::Full), vec![5, 10, 50, 200]);
        assert_eq!(configs().len(), 3);
    }

    #[test]
    fn envelope_logic_flags_outliers() {
        let mut row = BackendRow {
            config: "CA1".into(),
            n: 10,
            slotted: ReplicationSummary::of(&[]),
            mf_gamma: 0.5,
            mf_throughput: 0.7,
            gamma_envelope: 0.1,
            throughput_envelope: 0.1,
        };
        // Empty summary means NaN — patch the means directly.
        row.slotted.collision_probability.mean = 0.55;
        row.slotted.norm_throughput.mean = 0.75;
        assert!(row.within_envelope());
        row.slotted.collision_probability.mean = 0.75;
        assert!(!row.within_envelope());
    }
}
