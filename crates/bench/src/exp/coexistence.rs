//! E11 — incremental deployment: boosted and default stations sharing one
//! contention domain.
//!
//! E3 shows wider windows lift total throughput at large N. But CSMA/CA
//! parameter changes are rarely deployed atomically — so what happens when
//! *some* stations run a boosted table while the rest keep the 1901
//! default? The less aggressive (larger-window) stations yield more slots,
//! so the default stations free-ride: a classic incentive problem for MAC
//! parameter upgrades. The engine's per-station configs make this a
//! three-line scenario.

use crate::RunOpts;
use plc_core::config::CsmaConfig;
use plc_core::error::Result;
use plc_core::units::Microseconds;
use plc_mac::Backoff1901;
use plc_sim::engine::{EngineConfig, SlottedEngine, StationSpec};
use plc_stats::table::{fmt_prob, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Outcome of one mixed-population run.
#[derive(Debug, Clone, Copy)]
pub struct MixOutcome {
    /// Stations on the default CA1 table.
    pub n_default: usize,
    /// Stations on the boosted table.
    pub n_boosted: usize,
    /// Network normalized throughput.
    pub total_throughput: f64,
    /// Mean per-station successes of the default group.
    pub default_share: f64,
    /// Mean per-station successes of the boosted group.
    pub boosted_share: f64,
}

/// Run a mixed population: the first `n_default` stations use the CA1
/// default, the rest use `boosted`.
pub fn run_mix(
    opts: &RunOpts,
    n_default: usize,
    n_boosted: usize,
    boosted: &CsmaConfig,
    seed: u64,
) -> MixOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stations = Vec::new();
    for _ in 0..n_default {
        stations.push(StationSpec::saturated(Backoff1901::new(
            CsmaConfig::ieee1901_ca01(),
            &mut rng,
        )));
    }
    for _ in 0..n_boosted {
        stations.push(StationSpec::saturated(Backoff1901::new(
            boosted.clone(),
            &mut rng,
        )));
    }
    let cfg = EngineConfig::with_horizon(Microseconds(opts.horizon_us()));
    let mut engine = SlottedEngine::new(cfg, stations, seed);
    let m = engine.run().clone();
    let group_mean = |range: std::ops::Range<usize>| {
        if range.is_empty() {
            return f64::NAN;
        }
        let len = range.len() as f64;
        m.per_station[range]
            .iter()
            .map(|s| s.successes as f64)
            .sum::<f64>()
            / len
    };
    MixOutcome {
        n_default,
        n_boosted,
        total_throughput: m.norm_throughput(Microseconds(2050.0)),
        default_share: group_mean(0..n_default),
        boosted_share: group_mean(n_default..n_default + n_boosted),
    }
}

/// Render the experiment.
pub fn run(opts: &RunOpts) -> Result<String> {
    let _span = opts.obs.timer("exp.coexistence.mixes").start();
    // The E3-style boosted table for N = 10.
    let boosted = CsmaConfig::from_vectors(&[32, 64, 128, 256], &[0, 1, 3, 15])?;
    let n = 10;
    let mut t = Table::new(vec![
        "default/boosted",
        "total S",
        "per-station wins (default)",
        "per-station wins (boosted)",
        "ratio",
    ]);
    for n_boosted in [0usize, 3, 5, 7, 10] {
        let o = run_mix(opts, n - n_boosted, n_boosted, &boosted, 21);
        let ratio = o.default_share / o.boosted_share;
        let fmt_share = |x: f64| {
            if x.is_nan() {
                "-".to_string()
            } else {
                format!("{x:.0}")
            }
        };
        t.row(vec![
            format!("{}/{}", o.n_default, o.n_boosted),
            fmt_prob(o.total_throughput),
            fmt_share(o.default_share),
            fmt_share(o.boosted_share),
            if ratio.is_finite() {
                format!("{ratio:.2}")
            } else {
                "-".into()
            },
        ]);
    }
    Ok(format!(
        "E11 — incremental deployment of a boosted table (cw 32…256), N = {n}\n\n{}\n\
         Total throughput rises with every station that upgrades, but the\n\
         default stations free-ride on the upgraders' politeness: with a\n\
         mixed population each legacy station wins several times more often\n\
         than each boosted one. Parameter boosting is a collective-action\n\
         problem — consistent with why the standard ships one table.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upgraders_lose_share_but_lift_the_total() {
        let opts = RunOpts::quick();
        let boosted = CsmaConfig::from_vectors(&[32, 64, 128, 256], &[0, 1, 3, 15]).unwrap();
        let all_default = run_mix(&opts, 10, 0, &boosted, 3);
        let mixed = run_mix(&opts, 5, 5, &boosted, 3);
        let all_boosted = run_mix(&opts, 0, 10, &boosted, 3);
        // Monotone total throughput in upgraders.
        assert!(mixed.total_throughput > all_default.total_throughput);
        assert!(all_boosted.total_throughput > mixed.total_throughput);
        // Free-riding: default stations out-win boosted ones when mixed.
        assert!(
            mixed.default_share > 1.5 * mixed.boosted_share,
            "default {} vs boosted {}",
            mixed.default_share,
            mixed.boosted_share
        );
    }

    #[test]
    fn homogeneous_populations_are_fair() {
        let opts = RunOpts::quick();
        let boosted = CsmaConfig::from_vectors(&[32, 64, 128, 256], &[0, 1, 3, 15]).unwrap();
        let o = run_mix(&opts, 0, 10, &boosted, 4);
        // Within one group the shares are symmetric (long-run).
        assert!(o.boosted_share > 0.0);
        assert!(o.default_share.is_nan(), "empty group has no share");
    }
}
