//! Named sweep grids for the `experiments job` front end.
//!
//! A job directory records its grid by *name* (see
//! [`plc_jobs::JobManifest::grid_name`]), so `experiments job resume
//! --dir D` can rebuild the exact grid without the caller re-specifying
//! it — the manifest fingerprint check then proves the rebuild matches.
//! Every grid here is fully deterministic: fixed master seed, fixed
//! shape, no environment-dependent knobs (worker count is execution
//! policy and is applied by the CLI on top).

use plc_sim::{Simulation, SweepGrid};

/// The registered grid names, in display order.
pub fn known_grids() -> &'static [&'static str] {
    &["chaos-smoke", "n50-sat", "stuck-smoke"]
}

/// Build the named grid, or `None` for an unknown name.
pub fn named_grid(name: &str) -> Option<SweepGrid> {
    match name {
        // Small, fast, multi-point: the kill-and-resume chaos tests'
        // workhorse (6 points × 2 replications, a few ms per cell).
        "chaos-smoke" => Some(
            SweepGrid::new(4242)
                .config("ca1", Simulation::ieee1901(1).horizon_us(4.0e5))
                .stations(2..=7)
                .replications(2),
        ),
        // The saturated-N≈50 sweep path the job-overhead gate times:
        // ten single-replication points on the deep-backoff engine
        // workload.
        "n50-sat" => Some(
            SweepGrid::new(4243)
                .config("ca1_sat", Simulation::ieee1901(1).horizon_us(5.0e8))
                .stations(41..=50)
                .replications(1),
        ),
        // One pathological point whose horizon can never finish inside
        // a sane watchdog deadline — the quarantine-path exerciser.
        "stuck-smoke" => Some(
            SweepGrid::new(5)
                .config("stuck", Simulation::ieee1901(1).horizon_us(5.0e10))
                .stations([20])
                .replications(1),
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_known_grid_builds_nonempty() {
        for name in known_grids() {
            let grid = named_grid(name).expect("known grid builds");
            assert!(grid.num_points() > 0, "{name} is empty");
        }
        assert!(named_grid("no-such-grid").is_none());
    }

    #[test]
    fn chaos_smoke_shape_is_pinned() {
        // The kill-and-resume CI test depends on this shape: enough
        // points to kill mid-journal, small enough to finish in seconds.
        let grid = named_grid("chaos-smoke").unwrap();
        assert_eq!(grid.num_points(), 6);
        assert_eq!(grid.replication_budget(), 2);
        assert_eq!(grid.master_seed(), 4242);
    }
}
