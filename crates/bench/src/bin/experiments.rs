//! The experiment harness: regenerates every table and figure of the
//! paper (plus the extension experiments) as printed tables.
//!
//! ```text
//! experiments [--smoke|--full|--mode MODE] [--timings] [NAME...]
//! experiments bench-snapshot [--check] [--out DIR]
//!                            [--gate BASELINE.json [--tolerance FRAC]]
//!
//!   --smoke    tiny horizons: exercise every pipeline in seconds
//!              (integration-test mode; artifacts are noise)
//!   --full     paper-length runs (240 s tests, 10 repeats, 100 s sims);
//!              default is quick mode (CI-friendly)
//!   --mode M   spelled-out alternative: M is smoke, quick or full
//!   --timings  print per-phase timings after each experiment
//!   NAME       any of: table1 figure1 table2 figure2 throughput
//!              priorities boost fairness mme_overhead bursts models
//!              errors delay load coexistence aggregation adaptation
//!              chaos validate-backends multidomain (default: all, in order)
//!
//! bench-snapshot times the pinned engine workloads and writes
//! BENCH_<date>.json into DIR (default: the current directory); with
//! --check it reruns them at a reduced horizon, validates the schema and
//! writes nothing. --gate additionally compares the fresh snapshot
//! against a committed baseline and exits nonzero when any shared
//! workload regresses beyond the tolerance (default 0.15 = 15%).
//!
//! Any experiment failure is reported on stderr and the process exits
//! nonzero — no panics.
//! ```

use plc_bench::{registry, snapshot, RunOpts};
use plc_core::error::{Error, Result};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("bench-snapshot") => run_bench_snapshot(&args[1..]),
        _ => run_experiments(&args),
    };
    std::process::exit(code);
}

fn run_experiments(args: &[String]) -> i32 {
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");
    if smoke && full {
        eprintln!("--smoke and --full are mutually exclusive");
        return 2;
    }
    let mode_flag = match flag_value(args, "--mode") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if mode_flag.is_some() && (smoke || full) {
        eprintln!("--mode conflicts with --smoke/--full");
        return 2;
    }
    let timings = args.iter().any(|a| a == "--timings");
    // Bare arguments are experiment names — except the value consumed by
    // `--mode`.
    let mut names: Vec<&str> = Vec::new();
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--mode" {
            skip_value = true;
            continue;
        }
        if !a.starts_with("--") {
            names.push(a.as_str());
        }
    }

    let mode_label = mode_flag.as_deref().unwrap_or(if smoke {
        "smoke"
    } else if full {
        "full"
    } else {
        "quick"
    });
    let mut opts = match mode_label {
        "smoke" => RunOpts::smoke(),
        "quick" => RunOpts::quick(),
        "full" => RunOpts::full(),
        other => {
            eprintln!("--mode must be smoke, quick or full, got '{other}'");
            return 2;
        }
    };
    if timings {
        opts = opts.with_obs(plc_obs::Registry::new());
    }
    let registry = registry();

    let selected: Vec<_> = if names.is_empty() {
        registry
    } else {
        let known: Vec<&str> = registry.iter().map(|(n, _)| *n).collect();
        for name in &names {
            if !known.contains(name) {
                eprintln!("unknown experiment '{name}'; known: {}", known.join(" "));
                return 2;
            }
        }
        registry
            .into_iter()
            .filter(|(n, _)| names.contains(n))
            .collect()
    };

    println!(
        "plc experiment harness — mode: {}\n",
        match mode_label {
            "smoke" => "SMOKE (tiny horizons)",
            "full" => "FULL (paper-length)",
            _ => "quick",
        }
    );
    for (name, runner) in selected {
        println!("==================================================================");
        println!("== {name}");
        println!("==================================================================");
        let started = std::time::Instant::now();
        match runner(&opts) {
            Ok(output) => println!("{output}"),
            Err(e) => {
                eprintln!("experiment '{name}' failed: {e}");
                return 1;
            }
        }
        println!(
            "[{name} finished in {:.1} s]\n",
            started.elapsed().as_secs_f64()
        );
        if timings {
            print_phase_timings(&opts.obs, name);
        }
    }
    0
}

/// Print the `exp.<name>.*` span timers accumulated by one experiment.
fn print_phase_timings(obs: &plc_obs::Registry, name: &str) {
    let prefix = format!("exp.{name}.");
    let snap = obs.snapshot();
    let phases: Vec<_> = snap
        .timers
        .iter()
        .filter(|t| t.name.starts_with(&prefix))
        .collect();
    if phases.is_empty() {
        return;
    }
    println!("phase timings:");
    for t in phases {
        println!(
            "  {:<40} {:>4} span(s) {:>9.3} s",
            t.name, t.count, t.total_secs
        );
    }
    println!();
}

fn run_bench_snapshot(args: &[String]) -> i32 {
    match bench_snapshot(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bench-snapshot failed: {e}");
            1
        }
    }
}

/// Parse `--flag VALUE` out of `args`; `Ok(None)` when absent.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| Error::runtime(format!("{flag} requires an argument")))
        })
        .transpose()
}

fn bench_snapshot(args: &[String]) -> Result<()> {
    let check = args.iter().any(|a| a == "--check");
    let out_dir = flag_value(args, "--out")?.unwrap_or_else(|| ".".to_string());
    let gate = flag_value(args, "--gate")?;
    let tolerance = flag_value(args, "--tolerance")?
        .map(|t| {
            t.parse::<f64>()
                .map_err(|e| Error::runtime(format!("--tolerance must be a number: {e}")))
        })
        .transpose()?
        .unwrap_or(0.15);

    if check {
        if gate.is_some() {
            return Err(Error::runtime(
                "--gate needs full-scale timings; drop --check",
            ));
        }
        // Reduced horizons: validate the pipeline and schema quickly.
        let snap = snapshot::collect(0.05)?;
        snapshot::check(&snap)?;
        println!(
            "bench-snapshot --check OK: {} workloads, schema {}",
            snap.workloads.len(),
            snap.schema
        );
        return Ok(());
    }

    let snap = snapshot::collect(1.0)?;
    snapshot::check(&snap)?;
    let path = std::path::Path::new(&out_dir).join(snap.file_name());
    std::fs::write(&path, snap.to_json()? + "\n")?;
    println!("wrote {}", path.display());
    for w in &snap.workloads {
        println!(
            "  {:<24} {:>9.3} s  {:>12} slots  {:>12.0} slots/s",
            w.name, w.wall_secs, w.slots, w.slots_per_sec
        );
    }

    if let Some(baseline_path) = gate {
        let baseline_json = std::fs::read_to_string(&baseline_path)
            .map_err(|e| Error::runtime(format!("cannot read baseline {baseline_path}: {e}")))?;
        let baseline = snapshot::BenchSnapshot::from_json(&baseline_json)?;
        snapshot::compare(&snap, &baseline, tolerance)?;
        println!(
            "bench-snapshot --gate OK: within {:.0}% of {}",
            tolerance * 100.0,
            baseline_path
        );
    }
    Ok(())
}
