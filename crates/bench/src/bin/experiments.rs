//! The experiment harness: regenerates every table and figure of the
//! paper (plus the extension experiments) as printed tables.
//!
//! ```text
//! experiments [--smoke|--full|--mode MODE] [--timings] [NAME...]
//! experiments bench-snapshot [--check] [--out DIR]
//!                            [--gate BASELINE.json [--tolerance FRAC]]
//!                            [--job-overhead [--tolerance FRAC]]
//! experiments job run    --grid NAME --dir DIR [--workers N] [--retries K]
//!                        [--timeout-ms MS] [--points I,J,...] [--stream FILE]
//!                        [--stall-after N --stall-ms MS]
//! experiments job resume --dir DIR [--grid NAME] [--workers N] [--retries K]
//!                        [--timeout-ms MS] [--stream FILE]
//! experiments job status --dir DIR
//! experiments boost run|resume --dir DIR [--space NAME] [--portfolio NAME]
//!                              [--seed N] [--rungs N] [--screen-keep N]
//!                              [--horizon-us F] [--replications N]
//!                              [--workers N] [--stall-after N --stall-ms MS]
//! experiments boost status --dir DIR
//! experiments boost spaces
//!
//!   --smoke    tiny horizons: exercise every pipeline in seconds
//!              (integration-test mode; artifacts are noise)
//!   --full     paper-length runs (240 s tests, 10 repeats, 100 s sims);
//!              default is quick mode (CI-friendly)
//!   --mode M   spelled-out alternative: M is smoke, quick or full
//!   --timings  print per-phase timings after each experiment
//!   NAME       any of: table1 figure1 table2 figure2 throughput
//!              priorities boost fairness mme_overhead bursts models
//!              errors delay load coexistence aggregation adaptation
//!              chaos validate-backends multidomain boost-portfolio
//!              (default: all, in order)
//!
//! bench-snapshot times the pinned engine workloads and writes
//! BENCH_<date>.json into DIR (default: the current directory); with
//! --check it reruns them at a reduced horizon, validates the schema and
//! writes nothing. --gate additionally compares the fresh snapshot
//! against a committed baseline and exits nonzero when any shared
//! workload regresses beyond the tolerance (default 0.15 = 15%).
//! --job-overhead instead runs the paired plain-vs-journaled timing and
//! exits nonzero when the journaled job costs more than the tolerance
//! (default 0.02 = 2%) over the plain sweep.
//!
//! `boost` drives the closed-loop configuration optimizer (the
//! `plc-boost` crate): a mean-field screen over a named (CW, DC)
//! search space, then crash-resumable slotted confirm rungs over a
//! named scenario portfolio with successive halving, ending in a
//! Pareto front + recommended schedule written atomically as
//! `pareto.json`. `run` starts a search, `resume` continues a killed
//! one (byte-identical artifact for any kill instant and worker
//! count), `status` renders progress from the on-disk journals,
//! `spaces` lists the named spaces and portfolios. The bare
//! experiment name `boost` (no verb) still runs the E3 analytic
//! search.
//!
//! `job` drives crash-tolerant sweep jobs (the `plc-jobs` engine) over
//! the named grids in `plc_bench::grids`. `run` creates a checkpointed
//! job, `resume` continues a killed or cancelled one (rebuilding the
//! grid from the manifest when --grid is omitted), `status` renders
//! progress from the journal alone. Exit codes: 0 success, 2 usage,
//! 3 job complete but with quarantined points (summary + repro lines on
//! stderr), 1 any other failure.
//!
//! Any experiment failure is reported on stderr and the process exits
//! nonzero — no panics.
//! ```

use plc_bench::{registry, snapshot, RunOpts};
use plc_core::error::{Error, Result};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // "boost" doubles as the E3 experiment name, so the optimizer CLI
    // claims it only when followed by one of its verbs; bare
    // `experiments boost` still runs the E3 analytic search.
    let code = match args.first().map(String::as_str) {
        Some("bench-snapshot") => run_bench_snapshot(&args[1..]),
        Some("job") => run_job(&args[1..]),
        Some("boost")
            if matches!(
                args.get(1).map(String::as_str),
                Some("run" | "resume" | "status" | "spaces")
            ) =>
        {
            run_boost(&args[1..])
        }
        _ => run_experiments(&args),
    };
    std::process::exit(code);
}

fn run_experiments(args: &[String]) -> i32 {
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");
    if smoke && full {
        eprintln!("--smoke and --full are mutually exclusive");
        return 2;
    }
    let mode_flag = match flag_value(args, "--mode") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if mode_flag.is_some() && (smoke || full) {
        eprintln!("--mode conflicts with --smoke/--full");
        return 2;
    }
    let timings = args.iter().any(|a| a == "--timings");
    // Bare arguments are experiment names — except the value consumed by
    // `--mode`.
    let mut names: Vec<&str> = Vec::new();
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--mode" {
            skip_value = true;
            continue;
        }
        if !a.starts_with("--") {
            names.push(a.as_str());
        }
    }

    let mode_label = mode_flag.as_deref().unwrap_or(if smoke {
        "smoke"
    } else if full {
        "full"
    } else {
        "quick"
    });
    let mut opts = match mode_label {
        "smoke" => RunOpts::smoke(),
        "quick" => RunOpts::quick(),
        "full" => RunOpts::full(),
        other => {
            eprintln!("--mode must be smoke, quick or full, got '{other}'");
            return 2;
        }
    };
    if timings {
        opts = opts.with_obs(plc_obs::Registry::new());
    }
    let registry = registry();

    let selected: Vec<_> = if names.is_empty() {
        registry
    } else {
        let known: Vec<&str> = registry.iter().map(|(n, _)| *n).collect();
        for name in &names {
            if !known.contains(name) {
                eprintln!("unknown experiment '{name}'; known: {}", known.join(" "));
                return 2;
            }
        }
        registry
            .into_iter()
            .filter(|(n, _)| names.contains(n))
            .collect()
    };

    println!(
        "plc experiment harness — mode: {}\n",
        match mode_label {
            "smoke" => "SMOKE (tiny horizons)",
            "full" => "FULL (paper-length)",
            _ => "quick",
        }
    );
    for (name, runner) in selected {
        println!("==================================================================");
        println!("== {name}");
        println!("==================================================================");
        let started = std::time::Instant::now();
        match runner(&opts) {
            Ok(output) => println!("{output}"),
            Err(e) => {
                eprintln!("experiment '{name}' failed: {e}");
                return 1;
            }
        }
        println!(
            "[{name} finished in {:.1} s]\n",
            started.elapsed().as_secs_f64()
        );
        if timings {
            print_phase_timings(&opts.obs, name);
        }
    }
    0
}

/// Print the `exp.<name>.*` span timers accumulated by one experiment.
fn print_phase_timings(obs: &plc_obs::Registry, name: &str) {
    let prefix = format!("exp.{name}.");
    let snap = obs.snapshot();
    let phases: Vec<_> = snap
        .timers
        .iter()
        .filter(|t| t.name.starts_with(&prefix))
        .collect();
    if phases.is_empty() {
        return;
    }
    println!("phase timings:");
    for t in phases {
        println!(
            "  {:<40} {:>4} span(s) {:>9.3} s",
            t.name, t.count, t.total_secs
        );
    }
    println!();
}

fn run_bench_snapshot(args: &[String]) -> i32 {
    match bench_snapshot(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bench-snapshot failed: {e}");
            1
        }
    }
}

/// `experiments job run|resume|status`: the CLI over crash-tolerant
/// sweep jobs. Exit 0 on success, 2 on usage errors, 3 when the job
/// completed but quarantined points, 1 on any other failure.
fn run_job(args: &[String]) -> i32 {
    const USAGE: &str = "usage: experiments job run|resume|status --dir DIR \
         [--grid NAME] [--workers N] [--retries K] [--timeout-ms MS] \
         [--points I,J,...] [--stream FILE] [--stall-after N --stall-ms MS]";
    let Some(verb) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return 2;
    };
    let result = match verb {
        "run" | "resume" => job_run(verb, &args[1..]),
        "status" => job_status(&args[1..]),
        other => {
            eprintln!("unknown job verb '{other}'\n{USAGE}");
            return 2;
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("job {verb} failed: {e}");
            1
        }
    }
}

/// Parse `--flag N` as an integer, `Ok(None)` when absent.
fn int_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>>
where
    T::Err: std::fmt::Display,
{
    flag_value(args, flag)?
        .map(|v| {
            v.parse::<T>()
                .map_err(|e| Error::runtime(format!("{flag} must be an integer: {e}")))
        })
        .transpose()
}

/// `job run` / `job resume`: execute (the rest of) a named grid under
/// the checkpointed job engine.
fn job_run(verb: &str, args: &[String]) -> Result<i32> {
    let Some(dir) = flag_value(args, "--dir")? else {
        eprintln!("job {verb} requires --dir DIR");
        return Ok(2);
    };
    // `resume` can rebuild the grid from the manifest; `run` must name it.
    let grid_name = match flag_value(args, "--grid")? {
        Some(name) => name,
        None if verb == "resume" => {
            let manifest = plc_jobs::read_manifest(std::path::Path::new(&dir))?;
            match manifest.grid_name {
                Some(name) => name,
                None => {
                    eprintln!("manifest in {dir} records no grid name; pass --grid NAME");
                    return Ok(2);
                }
            }
        }
        None => {
            eprintln!("job run requires --grid NAME (one of: {})", grid_usage());
            return Ok(2);
        }
    };
    let Some(mut grid) = plc_bench::grids::named_grid(&grid_name) else {
        eprintln!("unknown grid '{grid_name}'; known: {}", grid_usage());
        return Ok(2);
    };
    if let Some(workers) = int_flag::<usize>(args, "--workers")? {
        grid = grid.workers(workers);
    }

    let mut cfg = plc_jobs::JobConfig::new(&dir);
    cfg.grid_name = Some(grid_name.clone());
    cfg.repro_prefix = Some(format!(
        "experiments job run --grid {grid_name} --dir {dir}"
    ));
    if let Some(retries) = int_flag::<u32>(args, "--retries")? {
        cfg.retries = retries;
    }
    if let Some(ms) = int_flag::<u64>(args, "--timeout-ms")? {
        cfg.timeout = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(points) = flag_value(args, "--points")? {
        let parsed: std::result::Result<Vec<usize>, _> = points
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect();
        cfg.points = Some(parsed.map_err(|e| Error::runtime(format!("--points: {e}")))?);
    }
    let stall_after = int_flag::<usize>(args, "--stall-after")?;
    let stall_ms = int_flag::<u64>(args, "--stall-ms")?;
    cfg.stall = match (stall_after, stall_ms) {
        (Some(after_points), Some(stall_ms)) => Some(plc_faults::JobStall {
            after_points,
            stall_ms,
        }),
        (None, None) => None,
        _ => {
            eprintln!("--stall-after and --stall-ms go together");
            return Ok(2);
        }
    };

    let mut job = match verb {
        "run" => plc_jobs::Job::create(grid, cfg)?,
        _ => plc_jobs::Job::resume(grid, cfg)?,
    };
    let registry = plc_obs::Registry::new();
    job = job.registry(&registry);
    if let Some(stream) = flag_value(args, "--stream")? {
        job = job.sink(Box::new(plc_jobs::JsonlFileSink::create(stream)?));
    }
    let report = job.run()?;

    println!(
        "job {verb}: {} executed, {} resumed, {} retried, {} quarantined — {}",
        report.executed,
        report.resumed,
        report.retried,
        report.quarantined.len(),
        if report.is_complete() {
            "complete"
        } else {
            "incomplete (resume to continue)"
        }
    );
    if !report.quarantined.is_empty() {
        eprintln!(
            "{} point(s) quarantined after exhausting retries:",
            report.quarantined.len()
        );
        for q in &report.quarantined {
            eprintln!(
                "  point {} ({} n={}): {} — repro: {}",
                q.point_index, q.config, q.n, q.reason, q.repro
            );
        }
        return Ok(3);
    }
    Ok(0)
}

/// `experiments boost ...` — drive closed-loop configuration boosting
/// (the `plc-boost` optimizer). Exit 0 on success, 2 on usage errors,
/// 1 on any other failure.
fn run_boost(args: &[String]) -> i32 {
    const USAGE: &str = "usage: experiments boost run|resume --dir DIR [--space NAME] \
         [--portfolio NAME] [--seed N] [--rungs N] [--screen-keep N] \
         [--horizon-us F] [--replications N] [--workers N] \
         [--stall-after N --stall-ms MS]\n\
         \x20      experiments boost status --dir DIR\n\
         \x20      experiments boost spaces";
    let verb = args[0].as_str();
    let result = match verb {
        "run" | "resume" => boost_run(verb, &args[1..]),
        "status" => boost_status(&args[1..]),
        "spaces" => {
            println!(
                "search spaces: {}\nportfolios:    {}",
                plc_boost::SearchSpace::names().join(" "),
                plc_boost::Portfolio::names().join(" ")
            );
            Ok(0)
        }
        other => {
            eprintln!("unknown boost verb '{other}'\n{USAGE}");
            return 2;
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("boost {verb} failed: {e}");
            1
        }
    }
}

/// `boost run` / `boost resume`: execute (the rest of) a boosting
/// search and print the verdict.
fn boost_run(verb: &str, args: &[String]) -> Result<i32> {
    let Some(dir) = flag_value(args, "--dir")? else {
        eprintln!("boost {verb} requires --dir DIR");
        return Ok(2);
    };
    let mut cfg = plc_boost::BoostConfig::new(&dir);
    if let Some(space) = flag_value(args, "--space")? {
        cfg.space = space;
    }
    if let Some(portfolio) = flag_value(args, "--portfolio")? {
        cfg.portfolio = portfolio;
    }
    if let Some(seed) = int_flag::<u64>(args, "--seed")? {
        cfg.seed = seed;
    }
    if let Some(rungs) = int_flag::<usize>(args, "--rungs")? {
        cfg.rungs = rungs;
    }
    if let Some(keep) = int_flag::<usize>(args, "--screen-keep")? {
        cfg.screen_keep = keep;
    }
    if let Some(h) = flag_value(args, "--horizon-us")? {
        cfg.base_horizon_us = h
            .parse::<f64>()
            .map_err(|e| Error::runtime(format!("--horizon-us must be a number: {e}")))?;
    }
    if let Some(reps) = int_flag::<u64>(args, "--replications")? {
        cfg.replications = reps;
    }
    cfg.workers = int_flag::<usize>(args, "--workers")?;
    let stall_after = int_flag::<usize>(args, "--stall-after")?;
    let stall_ms = int_flag::<u64>(args, "--stall-ms")?;
    cfg.stall = match (stall_after, stall_ms) {
        (Some(after_points), Some(stall_ms)) => Some(plc_faults::JobStall {
            after_points,
            stall_ms,
        }),
        (None, None) => None,
        _ => {
            eprintln!("--stall-after and --stall-ms go together");
            return Ok(2);
        }
    };

    let run = match verb {
        "run" => plc_boost::BoostRun::create(cfg)?,
        _ => plc_boost::BoostRun::resume(cfg)?,
    };
    let registry = plc_obs::Registry::new();
    let report = run.registry(&registry).run()?;
    let artifact = &report.artifact;
    let snap = registry.snapshot();
    let rec = &artifact.recommended;
    println!(
        "boost {verb}: {} finalist(s), {} on the Pareto front — artifact {}",
        artifact.finalists.len(),
        artifact.pareto.len(),
        report.artifact_path.display()
    );
    println!(
        "recommended '{}' (cw {:?}, dc {:?}) beats '{}' on {}/3 objectives",
        rec.candidate.label,
        rec.candidate.cw,
        rec.candidate.dc,
        artifact.baseline.label,
        rec.beats_baseline.count()
    );
    println!(
        "counters: {} screens, {} rung(s) run, {} candidate(s) pruned",
        snap.counter("boost.evals").unwrap_or(0),
        snap.counter("boost.rungs").unwrap_or(0),
        snap.counter("boost.pruned").unwrap_or(0)
    );
    Ok(0)
}

/// `boost status`: render progress from the manifests and journals
/// alone — safe to run while another process owns the search.
fn boost_status(args: &[String]) -> Result<i32> {
    let Some(dir) = flag_value(args, "--dir")? else {
        eprintln!("boost status requires --dir DIR");
        return Ok(2);
    };
    print!("{}", plc_boost::boost_status(std::path::Path::new(&dir))?);
    Ok(0)
}

/// `job status`: render progress from the manifest and journal alone —
/// safe to run while another process owns the job.
fn job_status(args: &[String]) -> Result<i32> {
    let Some(dir) = flag_value(args, "--dir")? else {
        eprintln!("job status requires --dir DIR");
        return Ok(2);
    };
    let dir = std::path::Path::new(&dir);
    let status = plc_jobs::JobStatus::read(dir)?;
    println!("{}", status.render());
    for q in plc_jobs::JobStatus::quarantine(dir)? {
        println!(
            "  quarantined point {} ({} n={}): {} — repro: {}",
            q.point_index, q.config, q.n, q.reason, q.repro
        );
    }
    Ok(0)
}

fn grid_usage() -> String {
    plc_bench::grids::known_grids().join(" ")
}

/// Parse `--flag VALUE` out of `args`; `Ok(None)` when absent.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| Error::runtime(format!("{flag} requires an argument")))
        })
        .transpose()
}

fn bench_snapshot(args: &[String]) -> Result<()> {
    let check = args.iter().any(|a| a == "--check");
    let out_dir = flag_value(args, "--out")?.unwrap_or_else(|| ".".to_string());
    let gate = flag_value(args, "--gate")?;
    let tolerance = flag_value(args, "--tolerance")?
        .map(|t| {
            t.parse::<f64>()
                .map_err(|e| Error::runtime(format!("--tolerance must be a number: {e}")))
        })
        .transpose()?;

    if args.iter().any(|a| a == "--job-overhead") {
        if check || gate.is_some() {
            return Err(Error::runtime(
                "--job-overhead is its own gate; drop --check/--gate",
            ));
        }
        // ~1 s of paired sweep work per round, best-of-3, so the <2%
        // default gate is robust against scheduler noise.
        let tolerance = tolerance.unwrap_or(0.02);
        let o = snapshot::job_overhead(0.25, 3)?;
        println!(
            "job-overhead: plain {:.3} s, journaled {:.3} s, ratio {:.4}",
            o.plain_secs, o.job_secs, o.ratio
        );
        if o.ratio > 1.0 + tolerance {
            return Err(Error::runtime(format!(
                "journaled job overhead {:.2}% exceeds the {:.0}% budget",
                (o.ratio - 1.0) * 100.0,
                tolerance * 100.0
            )));
        }
        println!(
            "bench-snapshot --job-overhead OK: within {:.0}% of the plain sweep",
            tolerance * 100.0
        );
        return Ok(());
    }
    let tolerance = tolerance.unwrap_or(0.15);

    if check {
        if gate.is_some() {
            return Err(Error::runtime(
                "--gate needs full-scale timings; drop --check",
            ));
        }
        // Reduced horizons: validate the pipeline and schema quickly.
        let snap = snapshot::collect(0.05)?;
        snapshot::check(&snap)?;
        println!(
            "bench-snapshot --check OK: {} workloads, schema {}",
            snap.workloads.len(),
            snap.schema
        );
        return Ok(());
    }

    let snap = snapshot::collect(1.0)?;
    snapshot::check(&snap)?;
    let path = std::path::Path::new(&out_dir).join(snap.file_name());
    std::fs::write(&path, snap.to_json()? + "\n")?;
    println!("wrote {}", path.display());
    for w in &snap.workloads {
        println!(
            "  {:<24} {:>9.3} s  {:>12} slots  {:>12.0} slots/s",
            w.name, w.wall_secs, w.slots, w.slots_per_sec
        );
    }

    if let Some(baseline_path) = gate {
        let baseline_json = std::fs::read_to_string(&baseline_path)
            .map_err(|e| Error::runtime(format!("cannot read baseline {baseline_path}: {e}")))?;
        let baseline = snapshot::BenchSnapshot::from_json(&baseline_json)?;
        snapshot::compare(&snap, &baseline, tolerance)?;
        println!(
            "bench-snapshot --gate OK: within {:.0}% of {}",
            tolerance * 100.0,
            baseline_path
        );
    }
    Ok(())
}
