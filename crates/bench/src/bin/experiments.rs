//! The experiment harness: regenerates every table and figure of the
//! paper (plus the extension experiments) as printed tables.
//!
//! ```text
//! experiments [--full] [NAME...]
//!
//!   --full     paper-length runs (240 s tests, 10 repeats, 100 s sims);
//!              default is quick mode (CI-friendly)
//!   NAME       any of: table1 figure1 table2 figure2 throughput
//!              priorities boost fairness mme_overhead bursts models
//!              (default: all, in order)
//! ```

use plc_bench::{registry, RunOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let opts = RunOpts { quick: !full };
    let registry = registry();

    let selected: Vec<_> = if names.is_empty() {
        registry
    } else {
        let known: Vec<&str> = registry.iter().map(|(n, _)| *n).collect();
        for name in &names {
            if !known.contains(name) {
                eprintln!("unknown experiment '{name}'; known: {}", known.join(" "));
                std::process::exit(2);
            }
        }
        registry
            .into_iter()
            .filter(|(n, _)| names.contains(n))
            .collect()
    };

    println!(
        "plc experiment harness — mode: {}\n",
        if full { "FULL (paper-length)" } else { "quick" }
    );
    for (name, runner) in selected {
        println!("==================================================================");
        println!("== {name}");
        println!("==================================================================");
        let started = std::time::Instant::now();
        let output = runner(&opts);
        println!("{output}");
        println!(
            "[{name} finished in {:.1} s]\n",
            started.elapsed().as_secs_f64()
        );
    }
}
