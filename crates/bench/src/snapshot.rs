//! Perf-trajectory snapshots: `BENCH_<date>.json`.
//!
//! The `experiments bench-snapshot` subcommand times a small set of
//! pinned engine workloads (wall-clock and engine slots per second, the
//! slot count read back from the [`plc_obs::Registry`] the engines are
//! instrumented with) and writes the result as a dated JSON file. The
//! committed files form a perf trajectory across PRs; `--check` reruns
//! the workloads at a reduced horizon and validates the schema without
//! touching the working tree.
//!
//! Wall-clock numbers depend on the host, so snapshots record throughput
//! for trend-reading by humans — they are deliberately *not* asserted
//! against by tests (the criterion benches in `benches/` are the
//! statistically careful tool).

use plc_core::error::{Error, Result};
use plc_obs::Registry;
use plc_sim::sweep;
use plc_sim::{Simulation, Topology};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema identifier embedded in every snapshot file.
pub const SCHEMA: &str = "plc-bench-snapshot/v1";

/// One timed workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Workload name (stable across PRs — the trajectory key).
    pub name: String,
    /// Wall-clock seconds for the whole workload.
    pub wall_secs: f64,
    /// Units of work done: engine slots stepped (`engine.steps`) for
    /// slotted workloads, stations solved (`meanfield.stations`) for the
    /// mean-field backend workload.
    pub slots: u64,
    /// Slots per wall-clock second.
    pub slots_per_sec: f64,
}

/// A dated collection of workload timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Civil date (UTC) the snapshot was taken, `YYYY-MM-DD`.
    pub date: String,
    /// The pinned workloads, in a fixed order.
    pub workloads: Vec<WorkloadResult>,
}

impl BenchSnapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::runtime(format!("snapshot encode: {e}")))
    }

    /// Parse a snapshot back from JSON, verifying the schema tag.
    pub fn from_json(json: &str) -> Result<Self> {
        let snap: BenchSnapshot = serde_json::from_str(json)
            .map_err(|e| Error::runtime(format!("snapshot decode: {e}")))?;
        if snap.schema != SCHEMA {
            return Err(Error::runtime(format!(
                "snapshot schema mismatch: expected {SCHEMA:?}, got {:?}",
                snap.schema
            )));
        }
        Ok(snap)
    }

    /// The file name this snapshot belongs in.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }
}

/// Today's civil date (UTC) as `YYYY-MM-DD`, from the system clock.
///
/// Uses the days-from-epoch civil-calendar algorithm so no date crate is
/// needed.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Convert days since 1970-01-01 to a (year, month, day) civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Time one closure that runs instrumented engines against `registry`,
/// reading the work count back from the named counter's delta
/// (`engine.steps` for slotted workloads, `meanfield.stations` for the
/// analytic backend, whose unit of work is stations solved, not slots
/// stepped).
fn time_workload(
    name: &str,
    registry: &Registry,
    counter_name: &str,
    f: impl FnOnce(),
) -> WorkloadResult {
    let counter = registry.counter(counter_name);
    let before = counter.get();
    let started = Instant::now();
    f();
    let wall_secs = started.elapsed().as_secs_f64();
    let slots = counter.get() - before;
    WorkloadResult {
        name: name.to_string(),
        wall_secs,
        slots,
        slots_per_sec: if wall_secs > 0.0 {
            slots as f64 / wall_secs
        } else {
            0.0
        },
    }
}

/// Run the pinned workloads. `scale` multiplies every horizon (1.0 for a
/// real snapshot, smaller for `--check`).
pub fn collect(scale: f64) -> Result<BenchSnapshot> {
    if !(scale.is_finite() && scale > 0.0) {
        return Err(Error::runtime(format!("invalid horizon scale {scale}")));
    }
    let h = |us: f64| us * scale;
    let registry = Registry::new();
    let mut workloads = Vec::new();

    workloads.push(time_workload(
        "engine_1901_n5_500s",
        &registry,
        "engine.steps",
        || {
            Simulation::ieee1901(5)
                .horizon_us(h(5.0e8))
                .seed(1)
                .registry(&registry)
                .run();
        },
    ));
    workloads.push(time_workload(
        "engine_1901_n20_500s",
        &registry,
        "engine.steps",
        || {
            Simulation::ieee1901(20)
                .horizon_us(h(5.0e8))
                .seed(1)
                .registry(&registry)
                .run();
        },
    ));
    workloads.push(time_workload(
        "engine_dcf_n10_500s",
        &registry,
        "engine.steps",
        || {
            Simulation::dcf(10)
                .horizon_us(h(5.0e8))
                .seed(1)
                .registry(&registry)
                .run();
        },
    ));
    workloads.push(time_workload(
        "engine_noisy_n3_500s",
        &registry,
        "engine.steps",
        || {
            Simulation::ieee1901(3)
                .pb_error_prob(0.1)
                .horizon_us(h(5.0e8))
                .seed(1)
                .registry(&registry)
                .run();
        },
    ));
    // A parallel sweep: 8 independent runs on the worker pool; the shared
    // registry accumulates engine.steps across workers.
    workloads.push(time_workload(
        "sweep_1901_n2to9_250s",
        &registry,
        "engine.steps",
        || {
            sweep::parallel_map(sweep::default_workers(), (2..=9usize).collect(), |_, n| {
                Simulation::ieee1901(n)
                    .horizon_us(h(2.5e8))
                    .seed(n as u64)
                    .registry(&registry)
                    .run()
            });
        },
    ));
    // Saturated N=50: the deepest-backoff workload, where the idle-slot
    // fast-forward matters most. Gated in CI against the committed
    // baseline (see `compare`).
    workloads.push(time_workload(
        "engine_1901_n50_sat_500s",
        &registry,
        "engine.steps",
        || {
            Simulation::ieee1901(50)
                .horizon_us(h(5.0e8))
                .seed(1)
                .registry(&registry)
                .run();
        },
    ));
    // Fleet-scale saturated populations: the medium is busy almost every
    // slot, so these exercise the SoA busy-slot sweep rather than the
    // idle fast-forward.
    workloads.push(time_workload(
        "engine_1901_n200_sat",
        &registry,
        "engine.steps",
        || {
            Simulation::ieee1901(200)
                .horizon_us(h(5.0e8))
                .seed(1)
                .registry(&registry)
                .run();
        },
    ));
    workloads.push(time_workload(
        "engine_1901_n500_sat",
        &registry,
        "engine.steps",
        || {
            Simulation::ieee1901(500)
                .horizon_us(h(5.0e8))
                .seed(1)
                .registry(&registry)
                .run();
        },
    ));
    // Ten isolated 50-station cells sharded across the batch pool. Each
    // cell spans 49 m (inside sense range), cells sit 500 m apart
    // (isolated), so every component takes the legacy fast path — this
    // times the multi-domain scheduling/merge overhead, not a new inner
    // loop. Counter is still engine slots: the per-cell engines are
    // instrumented into the same registry.
    workloads.push(time_workload(
        "multidomain_10x50_sat",
        &registry,
        "engine.steps",
        || {
            let mut b = Topology::builder();
            for c in 0..10 {
                let cell: Vec<(f64, f64)> = (0..50)
                    .map(|i| (c as f64 * 500.0 + i as f64, 0.0))
                    .collect();
                b = b.cell(&cell);
            }
            let topo = b.build().expect("snapshot topology must build");
            Simulation::ieee1901(500)
                .topology(topo)
                .horizon_us(h(5.0e8))
                .seed(1)
                .domain_workers(sweep::default_workers())
                .registry(&registry)
                .try_run_topology()
                .expect("multi-domain snapshot workload must run");
        },
    ));
    // The saturated N≈50 sweep path run through the journaled job
    // engine: same cells as a plain `SweepGrid::run`, plus the manifest,
    // per-point journal flushes and the atomic results write. The
    // trajectory shows what crash-tolerance costs end to end; the CI
    // gate (`--job-overhead`, see [`job_overhead`]) asserts the paired
    // plain-vs-job ratio.
    workloads.push(time_workload(
        "job_resume_overhead",
        &registry,
        "engine.steps",
        || {
            let dir =
                std::env::temp_dir().join(format!("plc_bench_job_snapshot_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            plc_jobs::Job::create(
                job_overhead_grid(scale, Some(&registry)),
                plc_jobs::JobConfig::new(&dir),
            )
            .expect("job snapshot workload must create")
            .run()
            .expect("job snapshot workload must run");
            let _ = std::fs::remove_dir_all(&dir);
        },
    ));
    // The boost optimizer's screening rung: the full default candidate
    // space pushed through the mean-field fixed point + delay DTMC at
    // every default-portfolio operating point. This is the cost of
    // "admission" into the expensive slotted rungs, so a regression
    // here multiplies directly into boosting-run latency. Unit of work
    // is fixed-point screens (`boost.evals`); `scale` shrinks the
    // round count, not the per-screen cost.
    workloads.push(time_workload(
        "boost_rung_screen",
        &registry,
        "boost.evals",
        || {
            let space = plc_boost::SearchSpace::default_space();
            let portfolio = plc_boost::Portfolio::default_portfolio();
            let timing = plc_core::timing::MacTiming::paper_default();
            let rounds = ((5.0 * scale).ceil() as usize).max(1);
            for _ in 0..rounds {
                plc_boost::screen_space(&space, &portfolio, &timing, Some(&registry))
                    .expect("boost screen workload must solve");
            }
        },
    ));
    // The mean-field backend at fleet scale: many 10k-station contention
    // domains solved on the batch pool. Unit of work is stations solved
    // (`meanfield.stations`), not engine slots — the analytic backend
    // steps none. `scale` shrinks the domain count instead of the
    // horizon, which the solve cost does not depend on.
    workloads.push(time_workload(
        "meanfield_n10k",
        &registry,
        "meanfield.stations",
        || {
            let domains = ((100.0 * scale).ceil() as usize).max(1);
            let sims: Vec<Simulation> = (0..domains)
                .map(|_| {
                    Simulation::ieee1901(10_000)
                        .backend(plc_sim::Backend::MeanField)
                        .horizon_us(1.0e8)
                })
                .collect();
            plc_sim::BatchRunner::new()
                .registry(&registry)
                .run_sims(sims);
        },
    ));

    Ok(BenchSnapshot {
        schema: SCHEMA.to_string(),
        date: today_utc(),
        workloads,
    })
}

/// The ten-point saturated-N≈50 sweep both sides of the job-overhead
/// gate run: one replication per point keeps every cell on the deep
/// backoff path the `engine_1901_n50_sat_500s` workload pins.
fn job_overhead_grid(scale: f64, registry: Option<&Registry>) -> plc_sim::SweepGrid {
    let mut template = Simulation::ieee1901(1).horizon_us(5.0e8 * scale);
    if let Some(r) = registry {
        template = template.registry(r);
    }
    plc_sim::SweepGrid::new(4243)
        .config("ca1_sat", template)
        .stations(41..=50)
        .replications(1)
        .workers(1)
}

/// Result of the paired plain-vs-journaled timing behind the
/// `bench-snapshot --job-overhead` CI gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOverhead {
    /// Best-of-`rounds` wall seconds for the plain [`SweepGrid`] run.
    pub plain_secs: f64,
    /// Best-of-`rounds` wall seconds for the same grid under
    /// [`plc_jobs::Job`] (manifest + journal + atomic results).
    pub job_secs: f64,
    /// `job_secs / plain_secs` — the gate fails when this exceeds
    /// `1 + tolerance`.
    pub ratio: f64,
}

/// Time the `job_resume_overhead` grid both plain and journaled,
/// best-of-`rounds` each, interleaved so drift hits both sides alike.
/// Also asserts the job's `results.json` payload is byte-identical to
/// the plain sweep every round — the overhead gate doubles as a
/// determinism check.
pub fn job_overhead(scale: f64, rounds: usize) -> Result<JobOverhead> {
    if !(scale.is_finite() && scale > 0.0) {
        return Err(Error::runtime(format!("invalid horizon scale {scale}")));
    }
    let rounds = rounds.max(1);
    let mut plain_secs = f64::INFINITY;
    let mut job_secs = f64::INFINITY;
    let mut plain_json: Option<String> = None;
    for round in 0..rounds {
        let started = Instant::now();
        let results = job_overhead_grid(scale, None).run();
        plain_secs = plain_secs.min(started.elapsed().as_secs_f64());
        let json = results.to_json();
        if plain_json.get_or_insert_with(|| json.clone()) != &json {
            return Err(Error::runtime("plain sweep varied across rounds"));
        }

        let dir = std::env::temp_dir().join(format!(
            "plc_bench_job_overhead_{}_{round}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let started = Instant::now();
        let report = plc_jobs::Job::create(
            job_overhead_grid(scale, None),
            plc_jobs::JobConfig::new(&dir),
        )?
        .run()?;
        job_secs = job_secs.min(started.elapsed().as_secs_f64());
        let job_json = report
            .results
            .ok_or_else(|| Error::runtime("job-overhead job did not complete"))?
            .to_json();
        let _ = std::fs::remove_dir_all(&dir);
        if Some(&job_json) != plain_json.as_ref() {
            return Err(Error::runtime(
                "journaled job diverged from the plain sweep",
            ));
        }
    }
    Ok(JobOverhead {
        plain_secs,
        job_secs,
        ratio: job_secs / plain_secs,
    })
}

/// Validate a freshly collected snapshot: every workload must have run
/// slots and the JSON must round-trip. Used by `bench-snapshot --check`.
pub fn check(snap: &BenchSnapshot) -> Result<()> {
    if snap.workloads.is_empty() {
        return Err(Error::runtime("snapshot has no workloads"));
    }
    for w in &snap.workloads {
        if w.slots == 0 {
            return Err(Error::runtime(format!("workload {:?} ran 0 slots", w.name)));
        }
        if !(w.wall_secs.is_finite() && w.wall_secs >= 0.0) {
            return Err(Error::runtime(format!(
                "workload {:?} has invalid wall time {}",
                w.name, w.wall_secs
            )));
        }
    }
    let round = BenchSnapshot::from_json(&snap.to_json()?)?;
    if round != *snap {
        return Err(Error::runtime("snapshot JSON does not round-trip"));
    }
    Ok(())
}

/// Regression gate: compare a fresh snapshot against a committed
/// baseline, failing if any workload present in both regressed by more
/// than `tolerance` (e.g. `0.15` = a 15% slots/sec drop fails).
///
/// Workloads are matched by name; ones only present on one side are
/// ignored (new workloads have no baseline yet, retired ones no current
/// number). Improvements never fail the gate.
pub fn compare(current: &BenchSnapshot, baseline: &BenchSnapshot, tolerance: f64) -> Result<()> {
    if !(tolerance.is_finite() && (0.0..1.0).contains(&tolerance)) {
        return Err(Error::runtime(format!(
            "tolerance must be in [0, 1), got {tolerance}"
        )));
    }
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    for base in &baseline.workloads {
        let Some(cur) = current.workloads.iter().find(|w| w.name == base.name) else {
            continue;
        };
        matched += 1;
        if base.slots_per_sec <= 0.0 {
            continue;
        }
        let ratio = cur.slots_per_sec / base.slots_per_sec;
        if ratio < 1.0 - tolerance {
            regressions.push(format!(
                "{}: {:.3e} slots/s vs baseline {:.3e} ({:.1}%)",
                base.name,
                cur.slots_per_sec,
                base.slots_per_sec,
                (ratio - 1.0) * 100.0
            ));
        }
    }
    if matched == 0 {
        return Err(Error::runtime(
            "no workloads in common between snapshot and baseline",
        ));
    }
    if !regressions.is_empty() {
        return Err(Error::runtime(format!(
            "perf regression beyond {:.0}% tolerance: {}",
            tolerance * 100.0,
            regressions.join("; ")
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // 2024-01-01
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        // Leap day.
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
    }

    #[test]
    fn today_is_well_formed() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
    }

    #[test]
    fn collect_and_check_roundtrip() {
        // Tiny horizons: this is a schema/plumbing test, not a benchmark.
        let snap = collect(2.0e-5).unwrap();
        assert_eq!(snap.workloads.len(), 12);
        check(&snap).unwrap();
        let parsed = BenchSnapshot::from_json(&snap.to_json().unwrap()).unwrap();
        assert_eq!(parsed, snap);
        assert!(parsed.file_name().starts_with("BENCH_"));
    }

    #[test]
    fn job_overhead_pairs_plain_and_journaled_runs() {
        // Tiny horizon: exercises the pairing + byte-identity check, not
        // the timing itself (CI runs it at gate scale).
        let o = job_overhead(2.0e-5, 1).unwrap();
        assert!(o.plain_secs.is_finite() && o.plain_secs > 0.0);
        assert!(o.job_secs.is_finite() && o.job_secs > 0.0);
        assert!(o.ratio > 0.0);
        assert!(job_overhead(f64::NAN, 1).is_err());
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let bad = r#"{"schema":"other/v9","date":"2026-01-01","workloads":[]}"#;
        assert!(BenchSnapshot::from_json(bad).is_err());
    }

    fn snap_with(workloads: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            schema: SCHEMA.to_string(),
            date: "2026-01-01".to_string(),
            workloads: workloads
                .iter()
                .map(|&(name, sps)| WorkloadResult {
                    name: name.to_string(),
                    wall_secs: 1.0,
                    slots: sps as u64,
                    slots_per_sec: sps,
                })
                .collect(),
        }
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = snap_with(&[("a", 1.0e6), ("b", 2.0e6)]);
        let cur = snap_with(&[("a", 0.9e6), ("b", 2.5e6)]);
        compare(&cur, &base, 0.15).unwrap();
    }

    #[test]
    fn compare_fails_on_regression() {
        let base = snap_with(&[("a", 1.0e6)]);
        let cur = snap_with(&[("a", 0.5e6)]);
        let err = compare(&cur, &base, 0.15).unwrap_err().to_string();
        assert!(err.contains("regression"), "{err}");
        assert!(err.contains('a'), "{err}");
    }

    #[test]
    fn compare_ignores_unmatched_workloads() {
        // A brand-new workload has no baseline; a retired one no current
        // number. Neither may trip the gate.
        let base = snap_with(&[("a", 1.0e6), ("retired", 9.9e6)]);
        let cur = snap_with(&[("a", 1.0e6), ("brand_new", 0.1e6)]);
        compare(&cur, &base, 0.15).unwrap();
    }

    #[test]
    fn compare_rejects_disjoint_snapshots() {
        let base = snap_with(&[("a", 1.0e6)]);
        let cur = snap_with(&[("b", 1.0e6)]);
        assert!(compare(&cur, &base, 0.15).is_err());
    }

    #[test]
    fn compare_rejects_bad_tolerance() {
        let s = snap_with(&[("a", 1.0e6)]);
        assert!(compare(&s, &s, 1.0).is_err());
        assert!(compare(&s, &s, -0.1).is_err());
        compare(&s, &s, 0.0).unwrap();
    }
}
