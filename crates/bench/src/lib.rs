//! # plc-bench — the experiment harness
//!
//! One module per table/figure of the paper (plus the extension
//! experiments from DESIGN.md), each exposing a
//! `run(&RunOpts) -> Result<String>` that regenerates the artifact as a
//! printed table. The `experiments` binary dispatches to them; the
//! criterion benches in `benches/` measure the computational cost of the
//! same pipelines, and [`snapshot`] pins a handful of workloads into a
//! committed `BENCH_<date>.json` perf trajectory.
//!
//! | module | artifact |
//! |--------|----------|
//! | [`exp::table1`] | Table 1 — CW/DC parameter tables |
//! | [`exp::figure1`] | Figure 1 — two-station backoff trace |
//! | [`exp::table2`] | Table 2 — ΣCᵢ/ΣAᵢ counters, N = 1…7 |
//! | [`exp::figure2`] | Figure 2 — collision probability vs N (sim/analysis/testbed) |
//! | [`exp::throughput`] | E1 — throughput vs N, 1901 vs 802.11 |
//! | [`exp::priorities`] | E2 — CA0–CA3 priority classes |
//! | [`exp::boost`] | E3 — throughput-optimal (CW, DC) search |
//! | [`exp::fairness`] | E4 — short-term fairness, 1901 vs 802.11 |
//! | [`exp::mme_overhead`] | E5 — management-message overhead |
//! | [`exp::bursts`] | E6 — burst-size frequencies |
//! | [`exp::models`] | E7 — modelling-assumption comparison |
//! | [`exp::errors`] | E8 — channel errors & selective PB retransmission |
//! | [`exp::delay`] | E9 — MAC access delay vs N |
//! | [`exp::load`] | E10 — unsaturated throughput/drops vs offered load |
//! | [`exp::coexistence`] | E11 — mixed default/boosted populations |
//! | [`exp::aggregation`] | E12 — Ethernet→PLC frame aggregation |
//! | [`exp::adaptation`] | E13 — tone-map adaptation vs channel drift |
//! | [`exp::chaos`] | E14 — Table 2 under deterministic fault injection |
//! | [`exp::validate_backends`] | E15 — slotted vs mean-field backend cross-validation |
//! | [`exp::multidomain`] | E16 — multi-domain coexistence: throughput vs inter-network coupling |
//! | [`exp::boost_portfolio`] | E17 — closed-loop boosting: portfolio Pareto search (`plc-boost`) |
//!
//! ## Errors and observability
//!
//! Experiments no longer panic on testbed or configuration failures:
//! every fallible step routes through [`plc_core::error::Error`] and the
//! `experiments` binary exits nonzero on the first failure. Each module
//! also reports phase timings (measure/render spans) into the
//! [`plc_obs::Registry`] carried by [`RunOpts::obs`]; the binary prints
//! them after each experiment when observability is enabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;
pub mod grids;
pub mod snapshot;

/// How long the experiments run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Tiny horizons: every pipeline is exercised end to end in seconds.
    /// Artifacts are statistically meaningless — integration-test mode.
    Smoke,
    /// CI-friendly horizons with meaningful (if noisy) statistics.
    Quick,
    /// Paper-length runs: 240 s tests, 10 repeats, 100 s simulations.
    Full,
}

/// Execution options shared by all experiments.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Horizon/repetition scaling.
    pub mode: Mode,
    /// Metric registry the experiments report phase timings into.
    /// Disabled by default — timers cost nothing until enabled.
    pub obs: plc_obs::Registry,
}

impl RunOpts {
    fn with_mode(mode: Mode) -> Self {
        RunOpts {
            mode,
            obs: plc_obs::Registry::disabled(),
        }
    }

    /// Smoke mode: tiny horizons, single repetitions.
    pub fn smoke() -> Self {
        Self::with_mode(Mode::Smoke)
    }

    /// Quick mode: CI-friendly horizons (the default).
    pub fn quick() -> Self {
        Self::with_mode(Mode::Quick)
    }

    /// Full mode: the paper's durations.
    pub fn full() -> Self {
        Self::with_mode(Mode::Full)
    }

    /// Attach an observability registry (builder style).
    pub fn with_obs(mut self, obs: plc_obs::Registry) -> Self {
        self.obs = obs;
        self
    }

    /// Simulation horizon in µs, scaled by mode.
    pub fn horizon_us(&self) -> f64 {
        match self.mode {
            Mode::Smoke => 4.0e5,
            Mode::Quick => 1.0e7,
            Mode::Full => 1.0e8,
        }
    }

    /// Emulated-testbed test duration in seconds.
    pub fn test_secs(&self) -> f64 {
        match self.mode {
            Mode::Smoke => 0.5,
            Mode::Quick => 10.0,
            Mode::Full => 240.0,
        }
    }

    /// Repetitions for averaged measurements (the paper uses 10).
    pub fn repeats(&self) -> u64 {
        match self.mode {
            Mode::Smoke => 1,
            Mode::Quick => 3,
            Mode::Full => 10,
        }
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        Self::quick()
    }
}

/// An experiment entry point: options in, rendered table out (or the
/// first failure, unified as [`plc_core::error::Error`]).
pub type Experiment = fn(&RunOpts) -> plc_core::error::Result<String>;

/// Every experiment's name and runner, in presentation order.
pub fn registry() -> Vec<(&'static str, Experiment)> {
    vec![
        ("table1", exp::table1::run as Experiment),
        ("figure1", exp::figure1::run),
        ("table2", exp::table2::run),
        ("figure2", exp::figure2::run),
        ("throughput", exp::throughput::run),
        ("priorities", exp::priorities::run),
        ("boost", exp::boost::run),
        ("fairness", exp::fairness::run),
        ("mme_overhead", exp::mme_overhead::run),
        ("bursts", exp::bursts::run),
        ("models", exp::models::run),
        ("errors", exp::errors::run),
        ("delay", exp::delay::run),
        ("load", exp::load::run),
        ("coexistence", exp::coexistence::run),
        ("aggregation", exp::aggregation::run),
        ("adaptation", exp::adaptation::run),
        ("chaos", exp::chaos::run),
        ("validate-backends", exp::validate_backends::run),
        ("multidomain", exp::multidomain::run),
        ("boost-portfolio", exp::boost_portfolio::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<_> = registry().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn opts_scale_with_mode() {
        let smoke = RunOpts::smoke();
        let quick = RunOpts::quick();
        let full = RunOpts::full();
        assert!(smoke.horizon_us() < quick.horizon_us());
        assert!(quick.horizon_us() < full.horizon_us());
        assert!(smoke.test_secs() < quick.test_secs());
        assert!(quick.test_secs() < full.test_secs());
        assert!(smoke.repeats() <= quick.repeats());
        assert!(quick.repeats() < full.repeats());
        assert_eq!(full.test_secs(), 240.0, "paper's test duration");
        assert_eq!(full.repeats(), 10, "paper averages 10 tests");
    }

    #[test]
    fn default_obs_is_disabled() {
        let opts = RunOpts::default();
        assert!(!opts.obs.is_enabled());
        // Disabled timers never record.
        let t = opts.obs.timer("exp.test");
        drop(t.start());
        assert_eq!(t.count(), 0);
    }
}
