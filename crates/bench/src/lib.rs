//! # plc-bench — the experiment harness
//!
//! One module per table/figure of the paper (plus the extension
//! experiments from DESIGN.md), each exposing a `run(&RunOpts) -> String`
//! that regenerates the artifact as a printed table. The `experiments`
//! binary dispatches to them; the criterion benches in `benches/` measure
//! the computational cost of the same pipelines.
//!
//! | module | artifact |
//! |--------|----------|
//! | [`exp::table1`] | Table 1 — CW/DC parameter tables |
//! | [`exp::figure1`] | Figure 1 — two-station backoff trace |
//! | [`exp::table2`] | Table 2 — ΣCᵢ/ΣAᵢ counters, N = 1…7 |
//! | [`exp::figure2`] | Figure 2 — collision probability vs N (sim/analysis/testbed) |
//! | [`exp::throughput`] | E1 — throughput vs N, 1901 vs 802.11 |
//! | [`exp::priorities`] | E2 — CA0–CA3 priority classes |
//! | [`exp::boost`] | E3 — throughput-optimal (CW, DC) search |
//! | [`exp::fairness`] | E4 — short-term fairness, 1901 vs 802.11 |
//! | [`exp::mme_overhead`] | E5 — management-message overhead |
//! | [`exp::bursts`] | E6 — burst-size frequencies |
//! | [`exp::models`] | E7 — modelling-assumption comparison |
//! | [`exp::errors`] | E8 — channel errors & selective PB retransmission |
//! | [`exp::delay`] | E9 — MAC access delay vs N |
//! | [`exp::load`] | E10 — unsaturated throughput/drops vs offered load |
//! | [`exp::coexistence`] | E11 — mixed default/boosted populations |
//! | [`exp::aggregation`] | E12 — Ethernet→PLC frame aggregation |
//! | [`exp::adaptation`] | E13 — tone-map adaptation vs channel drift |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;

/// Execution options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Quick mode: shorter horizons and fewer repetitions (CI-friendly).
    /// Full mode approaches the paper's durations.
    pub quick: bool,
}

impl RunOpts {
    /// Simulation horizon in µs, scaled by mode.
    pub fn horizon_us(&self) -> f64 {
        if self.quick {
            1.0e7
        } else {
            1.0e8
        }
    }

    /// Emulated-testbed test duration in seconds.
    pub fn test_secs(&self) -> f64 {
        if self.quick {
            10.0
        } else {
            240.0
        }
    }

    /// Repetitions for averaged measurements (the paper uses 10).
    pub fn repeats(&self) -> u64 {
        if self.quick {
            3
        } else {
            10
        }
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts { quick: true }
    }
}

/// An experiment entry point: options in, rendered table out.
pub type Experiment = fn(&RunOpts) -> String;

/// Every experiment's name and runner, in presentation order.
pub fn registry() -> Vec<(&'static str, Experiment)> {
    vec![
        ("table1", exp::table1::run as Experiment),
        ("figure1", exp::figure1::run),
        ("table2", exp::table2::run),
        ("figure2", exp::figure2::run),
        ("throughput", exp::throughput::run),
        ("priorities", exp::priorities::run),
        ("boost", exp::boost::run),
        ("fairness", exp::fairness::run),
        ("mme_overhead", exp::mme_overhead::run),
        ("bursts", exp::bursts::run),
        ("models", exp::models::run),
        ("errors", exp::errors::run),
        ("delay", exp::delay::run),
        ("load", exp::load::run),
        ("coexistence", exp::coexistence::run),
        ("aggregation", exp::aggregation::run),
        ("adaptation", exp::adaptation::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<_> = registry().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn opts_scale_with_mode() {
        let quick = RunOpts { quick: true };
        let full = RunOpts { quick: false };
        assert!(quick.horizon_us() < full.horizon_us());
        assert!(quick.test_secs() < full.test_secs());
        assert!(quick.repeats() < full.repeats());
        assert_eq!(full.test_secs(), 240.0, "paper's test duration");
        assert_eq!(full.repeats(), 10, "paper averages 10 tests");
    }
}
