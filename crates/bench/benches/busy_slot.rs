//! Microbenchmark for the struct-of-arrays busy-slot sweep alone.
//!
//! Drives `plc_sim`'s contention core through idle/success/collision
//! sweeps (with the fused fast-forward cache fold) without any of the
//! engine's traffic, metrics or trace plumbing, so regressions in the
//! per-station sweep cost show up undiluted. Each iteration advances
//! 1 000 slots, so per-station cost ≈ reported time / (1 000 · n).
//!
//! Run with `cargo bench -p plc-bench --bench busy_slot`. CI runs a
//! shortened smoke pass (non-gating) and uploads the criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plc_sim::contention_bench::BusySweepBench;
use std::hint::black_box;

const SLOTS_PER_ITER: usize = 1_000;

fn bench_busy_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("busy_slot_sweep");
    for &n in &[10usize, 50, 200, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut bench = BusySweepBench::new(n, 7);
            // Steady state: backoff stages deepen over the first few
            // thousand slots; state carries across iterations.
            bench.run(5 * SLOTS_PER_ITER);
            b.iter(|| black_box(bench.run(SLOTS_PER_ITER)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_busy_sweep);
criterion_main!(benches);
