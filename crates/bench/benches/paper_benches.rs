//! Criterion benchmarks — one group per regenerated table/figure, timing
//! the computational pipeline behind each artifact, plus core-engine
//! microbenchmarks (steps/second, fixed-point solves).
//!
//! Run with `cargo bench`. Sample counts are kept small because individual
//! iterations are whole simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plc_analysis::{boost_search, BianchiModel, BoostOptions, CoupledModel, Model1901};
use plc_core::timing::MacTiming;
use plc_core::units::Microseconds;
use plc_sim::{PaperSim, Simulation};
use plc_testbed::CollisionExperiment;
use std::hint::black_box;

/// Table 1 is constants; benchmark the config construction + validation
/// path that regenerates it.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/config_construction", |b| {
        b.iter(|| {
            let cfg = plc_core::config::CsmaConfig::ieee1901_ca01();
            black_box(cfg.validate().is_ok())
        })
    });
}

/// Figure 1: the trace pipeline (engine with snapshots).
fn bench_figure1(c: &mut Criterion) {
    c.bench_function("figure1/trace_30_events", |b| {
        b.iter(|| black_box(plc_bench::exp::figure1::trace(30, 1)))
    });
}

/// Table 2: one emulated-testbed measurement (2 s test, N = 3).
fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("testbed_measurement_n3_2s", |b| {
        b.iter(|| {
            let out = CollisionExperiment {
                duration: Microseconds::from_secs(2.0),
                ..CollisionExperiment::paper(3, 1)
            }
            .run()
            .unwrap();
            black_box(out.collision_probability)
        })
    });
    g.finish();
}

/// Figure 2: each of the three series at N = 5.
fn bench_figure2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10);
    g.bench_function("simulation_n5_5s", |b| {
        b.iter(|| {
            black_box(
                PaperSim::with_n_and_time(5, 5.0e6)
                    .run(1)
                    .unwrap()
                    .collision_pr,
            )
        })
    });
    g.bench_function("analysis_coupled_n5", |b| {
        let model = CoupledModel::default_ca1();
        b.iter(|| black_box(model.solve(5).collision_probability))
    });
    g.bench_function("testbed_n5_2s", |b| {
        b.iter(|| {
            black_box(
                CollisionExperiment {
                    duration: Microseconds::from_secs(2.0),
                    ..CollisionExperiment::paper(5, 1)
                }
                .run()
                .unwrap()
                .collision_probability,
            )
        })
    });
    g.finish();
}

/// E1: throughput comparison points at several N.
fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput_vs_n");
    g.sample_size(10);
    for n in [2usize, 10] {
        g.bench_with_input(BenchmarkId::new("sim_1901_5s", n), &n, |b, &n| {
            b.iter(|| black_box(Simulation::ieee1901(n).horizon_us(5.0e6).seed(1).run()))
        });
        g.bench_with_input(BenchmarkId::new("sim_dcf_5s", n), &n, |b, &n| {
            b.iter(|| black_box(Simulation::dcf(n).horizon_us(5.0e6).seed(1).run()))
        });
    }
    g.finish();
}

/// E3: the boost search (54 fixed-point solves).
fn bench_boost(c: &mut Criterion) {
    let mut g = c.benchmark_group("boost");
    g.sample_size(10);
    let timing = MacTiming::paper_default();
    g.bench_function("search_n10", |b| {
        b.iter(|| black_box(boost_search(10, &timing, &BoostOptions::default())))
    });
    g.finish();
}

/// E4: fairness pipeline — simulation + windowed Jain.
fn bench_fairness(c: &mut Criterion) {
    let mut g = c.benchmark_group("fairness");
    g.sample_size(10);
    g.bench_function("trace_and_windowed_jain_n4_5s", |b| {
        b.iter(|| {
            let trace = plc_bench::exp::fairness::success_trace(
                &Simulation::ieee1901(4).horizon_us(5.0e6).seed(1),
            );
            black_box(plc_stats::fairness::windowed_jain(&trace, 4, 16))
        })
    });
    g.finish();
}

/// E5/E6: the sniffer pipeline (capture → MME decode → burst grouping).
fn bench_sniffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("sniffer");
    g.sample_size(10);
    g.bench_function("mme_overhead_n2_2s", |b| {
        b.iter(|| {
            black_box(
                plc_bench::exp::mme_overhead::measure(&plc_bench::RunOpts::quick(), 2, 2e-6, 1)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// E7 + engine microbenchmarks: model solves and raw engine speed.
fn bench_models_and_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("models");
    for n in [2usize, 7, 20] {
        g.bench_with_input(BenchmarkId::new("coupled_solve", n), &n, |b, &n| {
            let m = CoupledModel::default_ca1();
            b.iter(|| black_box(m.solve(n).collision_probability))
        });
        g.bench_with_input(BenchmarkId::new("decoupled_solve", n), &n, |b, &n| {
            let m = Model1901::default_ca1();
            b.iter(|| black_box(m.solve(n).collision_probability))
        });
        g.bench_with_input(BenchmarkId::new("bianchi_solve", n), &n, |b, &n| {
            let m = BianchiModel::classic();
            b.iter(|| black_box(m.solve(n).collision_probability))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("engine");
    g.bench_function("reference_sim_1s_n5", |b| {
        b.iter(|| black_box(PaperSim::with_n_and_time(5, 1.0e6).run(1).unwrap()))
    });
    g.bench_function("modular_engine_1s_n5", |b| {
        b.iter(|| black_box(Simulation::ieee1901(5).horizon_us(1.0e6).seed(1).run()))
    });
    g.finish();
}

/// E8: the channel-error pipeline (PHY error model + retransmitting engine).
fn bench_errors(c: &mut Criterion) {
    let mut g = c.benchmark_group("errors");
    g.sample_size(10);
    g.bench_function("noisy_sim_n3_5s_p0.1", |b| {
        b.iter(|| {
            black_box(
                Simulation::ieee1901(3)
                    .pb_error_prob(0.1)
                    .horizon_us(5.0e6)
                    .seed(1)
                    .run()
                    .metrics
                    .goodput(),
            )
        })
    });
    g.bench_function("tone_map_and_rate", |b| {
        let ch = plc_phy::ChannelModel::long_link();
        b.iter(|| {
            let rate = plc_phy::PhyRate::from_tone_map(&ch.tone_map(black_box(0.0)));
            black_box(rate.airtime(36 * 1024))
        })
    });
    g.finish();
}

/// E9: the delay pipeline (simulation + renewal prediction).
fn bench_delay(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay");
    g.sample_size(10);
    g.bench_function("points_n_1_2_5", |b| {
        b.iter(|| {
            black_box(plc_bench::exp::delay::points(
                &plc_bench::RunOpts::quick(),
                &[1, 2, 5],
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_figure1,
    bench_table2,
    bench_figure2,
    bench_throughput,
    bench_boost,
    bench_fairness,
    bench_sniffer,
    bench_models_and_engine,
    bench_errors,
    bench_delay,
);
criterion_main!(benches);
