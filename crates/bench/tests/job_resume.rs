//! Kill-and-resume chaos tests against the real `experiments` binary:
//! a sweep job is SIGKILLed mid-journal (a stall fault holds the
//! checkpoint hook open as the kill window) and resumed in a fresh
//! process — with a different worker count — and the final
//! `results.json` must be byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_experiments");

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plc_job_resume_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_job(args: &[&str]) -> std::process::Output {
    Command::new(EXE)
        .arg("job")
        .args(args)
        .output()
        .expect("experiments binary runs")
}

/// Poll `journal.jsonl` in `dir` until it holds at least `lines`
/// newline-terminated entries (i.e. fully flushed lines).
fn wait_for_journal_lines(dir: &Path, lines: usize) {
    let path = dir.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(contents) = std::fs::read_to_string(&path) {
            if contents.ends_with('\n') && contents.lines().count() >= lines {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "journal never reached {lines} lines"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn killed_job_resumes_byte_identical_across_worker_counts() {
    // Reference: the same grid run to completion without interference.
    let ref_dir = temp_dir("reference");
    let out = run_job(&[
        "run",
        "--grid",
        "chaos-smoke",
        "--dir",
        ref_dir.to_str().unwrap(),
        "--workers",
        "1",
    ]);
    assert!(out.status.success(), "reference run failed: {out:?}");
    let reference = std::fs::read_to_string(ref_dir.join("results.json")).unwrap();

    // Chaos run: stall the checkpoint hook after the 3rd journaled point
    // so the process sits in a known window, then SIGKILL it there.
    let chaos_dir = temp_dir("chaos");
    let mut child = Command::new(EXE)
        .args([
            "job",
            "run",
            "--grid",
            "chaos-smoke",
            "--dir",
            chaos_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--stall-after",
            "3",
            "--stall-ms",
            "20000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("chaos child spawns");
    wait_for_journal_lines(&chaos_dir, 3);
    child.kill().expect("SIGKILL the stalled job");
    child.wait().expect("reap the killed job");
    assert!(
        !chaos_dir.join("results.json").exists(),
        "killed job must not have assembled results"
    );

    // Status reads progress from the journal alone, no live process.
    let out = run_job(&["status", "--dir", chaos_dir.to_str().unwrap()]);
    assert!(out.status.success(), "status failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("3/6 points settled"),
        "unexpected status: {stdout}"
    );

    // Resume on MORE workers; the grid is rebuilt from the manifest.
    let out = run_job(&[
        "resume",
        "--dir",
        chaos_dir.to_str().unwrap(),
        "--workers",
        "2",
    ]);
    assert!(out.status.success(), "resume failed: {out:?}");
    let resumed = std::fs::read_to_string(chaos_dir.join("results.json")).unwrap();
    assert_eq!(
        resumed, reference,
        "resumed results.json must be byte-identical to the clean run"
    );

    std::fs::remove_dir_all(&ref_dir).unwrap();
    std::fs::remove_dir_all(&chaos_dir).unwrap();
}

/// The kill window of the first test is mid-journal. This one covers
/// the *whole-document* write paths: the on-disk state a SIGKILL leaves
/// inside `atomic_write` of the manifest or the journal compaction is
/// the destination (old or new bytes, never torn) plus a stray
/// `<name>.<pid>.<seq>.tmp` — so we manufacture those strays, kill a
/// resuming process a second time (exercising compaction-on-load), and
/// require the final results to still be byte-identical.
#[test]
fn resume_survives_manifest_and_compaction_write_debris() {
    let ref_dir = temp_dir("debris_reference");
    let out = run_job(&[
        "run",
        "--grid",
        "chaos-smoke",
        "--dir",
        ref_dir.to_str().unwrap(),
        "--workers",
        "1",
    ]);
    assert!(out.status.success(), "reference run failed: {out:?}");
    let reference = std::fs::read_to_string(ref_dir.join("results.json")).unwrap();

    // First kill: mid-journal, as in the classic chaos test.
    let chaos_dir = temp_dir("debris_chaos");
    let spawn_stalled = |after: &str| {
        Command::new(EXE)
            .args([
                "job",
                if chaos_dir.join("manifest.json").exists() {
                    "resume"
                } else {
                    "run"
                },
                "--grid",
                "chaos-smoke",
                "--dir",
                chaos_dir.to_str().unwrap(),
                "--workers",
                "1",
                "--stall-after",
                after,
                "--stall-ms",
                "20000",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("chaos child spawns")
    };
    let mut child = spawn_stalled("2");
    wait_for_journal_lines(&chaos_dir, 2);
    child.kill().expect("SIGKILL the stalled job");
    child.wait().expect("reap the killed job");

    // Simulate a writer killed inside atomic_write of the manifest and
    // of a journal compaction: stray temp files with plausible partial
    // bytes. Neither was renamed, so neither may contribute state.
    let manifest_bytes = std::fs::read_to_string(chaos_dir.join("manifest.json")).unwrap();
    std::fs::write(
        chaos_dir.join("manifest.json.424242.0.tmp"),
        &manifest_bytes[..manifest_bytes.len() / 2],
    )
    .unwrap();
    let journal_bytes = std::fs::read_to_string(chaos_dir.join("journal.jsonl")).unwrap();
    std::fs::write(
        chaos_dir.join("journal.jsonl.424242.1.tmp"),
        &journal_bytes[..journal_bytes.len() - 3],
    )
    .unwrap();

    // Status must read through the debris.
    let out = run_job(&["status", "--dir", chaos_dir.to_str().unwrap()]);
    assert!(out.status.success(), "status failed: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("2/6 points settled"),
        "unexpected status: {:?}",
        out
    );

    // Second kill: a *resuming* process (which compacted the journal on
    // load) is killed mid-journal again.
    let mut child = spawn_stalled("2");
    wait_for_journal_lines(&chaos_dir, 4);
    child.kill().expect("SIGKILL the resumed job");
    child.wait().expect("reap the killed job");
    assert!(
        !chaos_dir.join("journal.jsonl.424242.1.tmp").exists(),
        "resume's compaction must sweep stray journal temp files"
    );

    // Final resume completes and matches the clean run byte for byte.
    let out = run_job(&[
        "resume",
        "--dir",
        chaos_dir.to_str().unwrap(),
        "--workers",
        "2",
    ]);
    assert!(out.status.success(), "final resume failed: {out:?}");
    let resumed = std::fs::read_to_string(chaos_dir.join("results.json")).unwrap();
    assert_eq!(
        resumed, reference,
        "results after manifest/compaction debris must match the clean run"
    );

    std::fs::remove_dir_all(&ref_dir).unwrap();
    std::fs::remove_dir_all(&chaos_dir).unwrap();
}

#[test]
fn quarantined_points_exit_nonzero_with_repro_lines() {
    let dir = temp_dir("quarantine");
    let out = run_job(&[
        "run",
        "--grid",
        "stuck-smoke",
        "--dir",
        dir.to_str().unwrap(),
        "--timeout-ms",
        "50",
        "--retries",
        "0",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "quarantine must map to exit 3: {out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined"), "stderr: {stderr}");
    assert!(
        stderr.contains("repro: experiments job run --grid stuck-smoke"),
        "stderr: {stderr}"
    );
    assert!(dir.join("quarantine.jsonl").exists());
    // The job still completed: every point is accounted for on disk.
    assert!(dir.join("results.json").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_errors_exit_2() {
    let out = run_job(&["run", "--dir", "/tmp/plc-job-nowhere"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run_job(&[
        "run",
        "--grid",
        "no-such-grid",
        "--dir",
        "/tmp/plc-job-nowhere",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run_job(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
