//! Chaos and determinism tests for the closed-loop boosting CLI
//! (`experiments boost`): the search must produce a non-empty Pareto
//! front, the `pareto.json` artifact must be byte-identical for any
//! worker count, and a SIGKILL mid-search must be survivable —
//! `experiments boost resume` replays to the identical artifact.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_experiments");

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("plc_boost_resume_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tiny-space × smoke-portfolio search every test runs, fixed
/// modulo directory and worker count.
fn smoke_args(dir: &Path, workers: &str) -> Vec<String> {
    [
        "run",
        "--dir",
        dir.to_str().unwrap(),
        "--space",
        "tiny",
        "--portfolio",
        "smoke",
        "--seed",
        "42",
        "--rungs",
        "2",
        "--screen-keep",
        "4",
        "--horizon-us",
        "2e5",
        "--replications",
        "1",
        "--workers",
        workers,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn run_boost(args: &[String]) -> std::process::Output {
    Command::new(EXE)
        .arg("boost")
        .args(args)
        .output()
        .expect("experiments binary runs")
}

/// Poll a member job's `journal.jsonl` until it holds at least `lines`
/// fully flushed entries.
fn wait_for_journal_lines(path: &Path, lines: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(contents) = std::fs::read_to_string(path) {
            if contents.ends_with('\n') && contents.lines().count() >= lines {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "journal at {} never reached {lines} lines",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn boost_search_finds_a_front_and_is_byte_identical_across_workers() {
    let dir_one = temp_dir("workers1");
    let out = run_boost(&smoke_args(&dir_one, "1"));
    assert!(out.status.success(), "boost run failed: {out:?}");
    let artifact_one = std::fs::read_to_string(dir_one.join("pareto.json")).unwrap();

    // The front is non-empty and the verdict names a recommendation.
    // (The vendored serde_json is a writer-oriented stand-in, so probe
    // the document textually.)
    assert!(
        !artifact_one.contains("\"pareto\":[]"),
        "empty Pareto front: {artifact_one}"
    );
    assert!(
        artifact_one.contains("\"recommended\":{\"candidate\":{\"label\":\""),
        "missing recommendation: {artifact_one}"
    );

    // Same search, four workers: the artifact must not differ by a byte.
    let dir_four = temp_dir("workers4");
    let out = run_boost(&smoke_args(&dir_four, "4"));
    assert!(
        out.status.success(),
        "boost run (4 workers) failed: {out:?}"
    );
    let artifact_four = std::fs::read_to_string(dir_four.join("pareto.json")).unwrap();
    assert_eq!(
        artifact_one, artifact_four,
        "pareto.json differs across worker counts"
    );

    std::fs::remove_dir_all(&dir_one).unwrap();
    std::fs::remove_dir_all(&dir_four).unwrap();
}

#[test]
fn killed_boost_search_resumes_byte_identical() {
    // Reference: the same search run to completion without interference.
    let ref_dir = temp_dir("reference");
    let out = run_boost(&smoke_args(&ref_dir, "1"));
    assert!(out.status.success(), "reference run failed: {out:?}");
    let reference = std::fs::read_to_string(ref_dir.join("pareto.json")).unwrap();

    // Chaos run: stall the first member job's checkpoint hook after its
    // 2nd journaled point so the process sits in a known window, then
    // SIGKILL it there — mid-rung, mid-member.
    let chaos_dir = temp_dir("chaos");
    let mut args = smoke_args(&chaos_dir, "1");
    args.extend(["--stall-after", "2", "--stall-ms", "20000"].map(String::from));
    let mut child = Command::new(EXE)
        .arg("boost")
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("chaos child spawns");
    wait_for_journal_lines(&chaos_dir.join("rung1/saturated/journal.jsonl"), 2);
    child.kill().expect("SIGKILL the stalled search");
    child.wait().expect("reap the killed search");
    assert!(
        !chaos_dir.join("pareto.json").exists(),
        "killed search must not have written its artifact"
    );

    // Status reads progress from the manifests and journals alone.
    let out = run_boost(&[
        "status".to_string(),
        "--dir".to_string(),
        chaos_dir.to_str().unwrap().to_string(),
    ]);
    assert!(out.status.success(), "status failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("rung1/saturated") && stdout.contains("artifact: pending"),
        "unexpected status: {stdout}"
    );

    // Resume in a fresh process with a different worker count: settled
    // points replay from the journals and the artifact is identical.
    let mut resume_args = smoke_args(&chaos_dir, "2");
    resume_args[0] = "resume".to_string();
    let out = run_boost(&resume_args);
    assert!(out.status.success(), "resume failed: {out:?}");
    let resumed = std::fs::read_to_string(chaos_dir.join("pareto.json")).unwrap();
    assert_eq!(
        reference, resumed,
        "resumed artifact differs from the uninterrupted run"
    );

    // Resuming a finished search is a no-op returning the same artifact.
    let out = run_boost(&resume_args);
    assert!(out.status.success(), "second resume failed: {out:?}");
    let again = std::fs::read_to_string(chaos_dir.join("pareto.json")).unwrap();
    assert_eq!(reference, again);

    std::fs::remove_dir_all(&ref_dir).unwrap();
    std::fs::remove_dir_all(&chaos_dir).unwrap();
}

#[test]
fn boost_run_refuses_an_existing_search_and_mismatched_resume() {
    let dir = temp_dir("refuse");
    let out = run_boost(&smoke_args(&dir, "1"));
    assert!(out.status.success(), "initial run failed: {out:?}");

    // A second `run` into the same directory is refused.
    let out = run_boost(&smoke_args(&dir, "1"));
    assert!(!out.status.success(), "second run must be refused");

    // A resume with different search parameters is refused.
    let mut args = smoke_args(&dir, "1");
    args[0] = "resume".to_string();
    let seed_at = args.iter().position(|a| a == "--seed").unwrap() + 1;
    args[seed_at] = "7".to_string();
    let out = run_boost(&args);
    assert!(!out.status.success(), "mismatched resume must be refused");

    std::fs::remove_dir_all(&dir).unwrap();
}
