//! Smoke test: every registered experiment must complete end to end at
//! smoke horizons without error — the same pipelines `experiments
//! --smoke` exercises in CI, run in-process so a failure names the
//! module.

use plc_bench::{registry, RunOpts};

#[test]
fn every_experiment_runs_at_smoke_horizons() {
    let opts = RunOpts::smoke().with_obs(plc_obs::Registry::new());
    for (name, runner) in registry() {
        let out = runner(&opts).unwrap_or_else(|e| panic!("experiment {name} failed: {e}"));
        assert!(!out.is_empty(), "experiment {name} rendered nothing");
    }
    // Every module reported at least one phase timing into the registry.
    let snap = opts.obs.snapshot();
    for (name, _) in registry() {
        let prefix = format!("exp.{name}.");
        assert!(
            snap.timers.iter().any(|t| t.name.starts_with(&prefix)),
            "experiment {name} reported no phase timings (no {prefix}* timer)"
        );
    }
}
