//! ROBO: the fixed robust modulation modes.
//!
//! HomePlug AV keeps three rate-less fallback modes that modulate every
//! carrier with QPSK and repeat bits across carriers and symbols. They
//! need no negotiated tone map, which is why they carry everything that
//! must be decodable by everyone: frame-control/delimiters, broadcast,
//! and the first exchanges of a new link. This is the mechanism behind
//! the paper's observation that *collided frames' preambles can still be
//! decoded* — the delimiter is ROBO-modulated and survives collisions the
//! payload does not.

use serde::{Deserialize, Serialize};

/// The three standard ROBO modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoboMode {
    /// Mini-ROBO: heaviest repetition (×5), ≈ 3.8 Mb/s; used for the
    /// smallest control payloads.
    Mini,
    /// Standard ROBO: ×4 repetition, ≈ 4.9 Mb/s.
    Standard,
    /// High-speed ROBO: ×2 repetition, ≈ 9.8 Mb/s.
    HighSpeed,
}

impl RoboMode {
    /// Bit repetition factor across carriers/symbols.
    pub fn repetition(self) -> u32 {
        match self {
            RoboMode::Mini => 5,
            RoboMode::Standard => 4,
            RoboMode::HighSpeed => 2,
        }
    }

    /// Nominal payload rate in Mb/s.
    pub fn mbps(self) -> f64 {
        match self {
            RoboMode::Mini => 3.8,
            RoboMode::Standard => 4.9,
            RoboMode::HighSpeed => 9.8,
        }
    }

    /// Effective SNR gain from repetition combining (dB):
    /// `10·log10(repetition)`.
    pub fn combining_gain_db(self) -> f64 {
        10.0 * (self.repetition() as f64).log10()
    }

    /// Whether a ROBO-modulated delimiter is decodable at `snr_db`
    /// channel SNR: QPSK needs ≈ 4 dB, minus the combining gain — and a
    /// colliding transmission adds interference that costs roughly the
    /// interferer's power (`collision = true` ⇒ ≈ 3 dB penalty with one
    /// equal-power interferer).
    pub fn delimiter_decodable(self, snr_db: f64, collision: bool) -> bool {
        let required = 4.0 - self.combining_gain_db() + if collision { 3.0 } else { 0.0 };
        snr_db >= required
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_and_rate_are_inverse() {
        assert!(RoboMode::Mini.repetition() > RoboMode::Standard.repetition());
        assert!(RoboMode::Standard.repetition() > RoboMode::HighSpeed.repetition());
        assert!(RoboMode::Mini.mbps() < RoboMode::HighSpeed.mbps());
    }

    #[test]
    fn combining_gain() {
        assert!((RoboMode::Mini.combining_gain_db() - 6.9897).abs() < 1e-3);
        assert!((RoboMode::HighSpeed.combining_gain_db() - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn delimiters_survive_collisions_at_reasonable_snr() {
        // The paper's premise: on a power strip (high SNR), collided
        // frames are still acknowledged because their ROBO delimiters
        // decode. At 10 dB every mode survives a collision…
        for m in [RoboMode::Mini, RoboMode::Standard, RoboMode::HighSpeed] {
            assert!(m.delimiter_decodable(10.0, true), "{m:?} at 10 dB");
        }
        // …while a deeply attenuated link loses even clean delimiters.
        assert!(!RoboMode::HighSpeed.delimiter_decodable(-5.0, false));
    }

    #[test]
    fn collision_penalty_bites_at_the_margin() {
        // Pick an SNR where clean decodes but collided does not.
        let m = RoboMode::HighSpeed; // needs 0.99 dB clean, 3.99 dB collided
        let snr = 2.0;
        assert!(m.delimiter_decodable(snr, false));
        assert!(!m.delimiter_decodable(snr, true));
    }
}
