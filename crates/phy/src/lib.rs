//! # plc-phy — a synthetic HomePlug AV PHY model
//!
//! The paper deliberately excludes the PHY (§4.1): the vendors' bit-loading
//! algorithms are unpublished, there is no validated PLC PHY simulator, and
//! the MAC study doesn't need one — it uses fixed `Ts`/`Tc`/frame-length
//! constants. The same section, however, names exactly what a fuller model
//! would need: *frame aggregation and bit loading* ("the bit loading …
//! depends on the channel, and each frame can employ different modulation
//! scheme"), and *channel errors* ("the retransmissions can involve some
//! physical blocks (PB) and not the entire frame").
//!
//! This crate is the closest synthetic equivalent, built from the public
//! facts of the HomePlug AV PHY, so that those excluded mechanisms can be
//! exercised as extension experiments:
//!
//! * [`channel::ChannelModel`] — per-link SNR with log-distance
//!   attenuation and the periodic variation power-line channels exhibit
//!   synchronously with the mains cycle;
//! * [`tonemap::ToneMap`] — per-carrier modulation selection by SNR
//!   threshold (the *bit loading*), over the 917 usable OFDM carriers;
//! * [`rate::PhyRate`] — payload bits per OFDM symbol → frame airtime, and
//!   a bridge to `plc_core::timing::MacTiming` so the MAC simulators can
//!   run on channel-derived timing instead of the paper constants;
//! * [`robo`] — the fixed robust (ROBO) modes used for delimiters,
//!   broadcast and fallback, which is *why* collided frames' delimiters
//!   are still decodable;
//! * [`error::PbErrorModel`] — per-512-byte-PB error probability from SNR,
//!   feeding the engines' selective-retransmission extension.
//!
//! Everything is deterministic and documented as a *model*, not a claim
//! about vendor firmware; DESIGN.md records the substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod rate;
pub mod robo;
pub mod tonemap;

pub use channel::ChannelModel;
pub use error::PbErrorModel;
pub use rate::PhyRate;
pub use tonemap::{Modulation, ToneMap};
