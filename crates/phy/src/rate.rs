//! PHY rates and frame airtime.
//!
//! HomePlug AV OFDM symbols last 40.96 µs plus a guard interval (5.56 µs
//! for payload symbols in the common configuration); the payload rate is
//! `bits_per_symbol / symbol_time × code_rate`. This module converts a
//! tone map into a data rate and a frame's byte count into airtime — the
//! bridge from the synthetic channel to the MAC timing the simulators
//! consume ("to simulate the full MAC stack, we need full information, or
//! a model of the PHY layer").

use crate::tonemap::ToneMap;
use plc_core::timing::MacTiming;
use plc_core::units::Microseconds;
use serde::{Deserialize, Serialize};

/// Useful part of an OFDM symbol (µs).
pub const SYMBOL_US: f64 = 40.96;

/// Guard interval per payload symbol (µs).
pub const GUARD_US: f64 = 5.56;

/// HomePlug AV's turbo code rate for payload.
pub const CODE_RATE: f64 = 16.0 / 21.0;

/// A physical-layer rate derived from a tone map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhyRate {
    /// Coded payload bits per OFDM symbol.
    pub bits_per_symbol: u64,
}

impl PhyRate {
    /// Rate achieved by a tone map.
    pub fn from_tone_map(tm: &ToneMap) -> Self {
        PhyRate {
            bits_per_symbol: tm.bits_per_symbol(),
        }
    }

    /// Information bit rate in Mb/s (after coding).
    pub fn mbps(&self) -> f64 {
        self.bits_per_symbol as f64 * CODE_RATE / (SYMBOL_US + GUARD_US)
    }

    /// Airtime of `payload_bytes` of application data (µs): the number of
    /// OFDM symbols needed at this rate. Returns `None` on a dead channel.
    pub fn airtime(&self, payload_bytes: usize) -> Option<Microseconds> {
        if self.bits_per_symbol == 0 {
            return None;
        }
        let info_bits = payload_bytes as f64 * 8.0;
        let coded_bits = info_bits / CODE_RATE;
        let symbols = (coded_bits / self.bits_per_symbol as f64).ceil();
        Some(Microseconds(symbols * (SYMBOL_US + GUARD_US)))
    }

    /// Derive a full [`MacTiming`] for MPDUs carrying `payload_bytes`,
    /// with `Ts`/`Tc` rebuilt from the standard overhead structure around
    /// the channel-determined payload airtime. Returns `None` on a dead
    /// channel.
    pub fn mac_timing(&self, payload_bytes: usize) -> Option<MacTiming> {
        self.airtime(payload_bytes).map(MacTiming::from_payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::tonemap::{ToneMap, NUM_CARRIERS};

    #[test]
    fn top_rate_is_hpav_class() {
        // All carriers at 1024-QAM: 9170 bits/symbol → ≈ 150 Mb/s coded
        // payload rate, the HomePlug AV class figure.
        let r = PhyRate::from_tone_map(&ToneMap::flat(35.0));
        assert_eq!(r.bits_per_symbol, 10 * NUM_CARRIERS as u64);
        assert!((140.0..165.0).contains(&r.mbps()), "rate {} Mb/s", r.mbps());
    }

    #[test]
    fn airtime_scales_inversely_with_rate() {
        let fast = PhyRate::from_tone_map(&ToneMap::flat(35.0));
        let slow = PhyRate::from_tone_map(&ToneMap::flat(5.0));
        let tf = fast.airtime(8 * 512).unwrap();
        let ts = slow.airtime(8 * 512).unwrap();
        assert!(ts > tf);
        // 5 dB loads QPSK (2 bits) vs 10 bits at 35 dB → ≈ 5× airtime.
        let ratio = ts.as_micros() / tf.as_micros();
        assert!((4.0..6.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dead_channel_has_no_airtime() {
        let dead = PhyRate::from_tone_map(&ToneMap::flat(-10.0));
        assert_eq!(dead.airtime(512), None);
        assert_eq!(dead.mac_timing(512), None);
        assert_eq!(dead.mbps(), 0.0);
    }

    #[test]
    fn airtime_is_symbol_quantized() {
        let r = PhyRate::from_tone_map(&ToneMap::flat(35.0));
        let t1 = r.airtime(1).unwrap();
        let sym = SYMBOL_US + GUARD_US;
        assert!(
            (t1.as_micros() - sym).abs() < 1e-9,
            "one byte still costs one symbol"
        );
        let t0 = r.airtime(0).unwrap();
        assert_eq!(t0.as_micros(), 0.0);
    }

    #[test]
    fn strip_channel_yields_papers_order_of_magnitude() {
        // The paper's frame_length is 2050 µs for a large aggregated
        // frame. A power-strip channel carrying a ~36 kB aggregate should
        // land in the same order of magnitude.
        let ch = ChannelModel::power_strip();
        let rate = PhyRate::from_tone_map(&ch.tone_map(0.0));
        let t = rate.airtime(36 * 1024).unwrap();
        assert!(
            (1000.0..4000.0).contains(&t.as_micros()),
            "aggregate airtime {t} should be paper-like"
        );
        let timing = rate.mac_timing(36 * 1024).unwrap();
        assert!(timing.is_valid());
        assert!(timing.tc > timing.ts);
    }
}
