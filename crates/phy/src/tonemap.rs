//! Tone maps: per-carrier modulation selection ("bit loading").
//!
//! HomePlug AV modulates 917 usable OFDM carriers between 1.8 and 28 MHz,
//! each independently loaded with the densest constellation its SNR
//! supports — that per-carrier choice is the *tone map* negotiated between
//! each pair of stations. The report notes the vendors' adaptation
//! algorithm is unpublished; we use the textbook rule: pick the highest
//! modulation whose SNR threshold is met (thresholds ≈ the uncoded
//! requirement for ~10⁻³ symbol error rate with HPAV's turbo code margin).

use serde::{Deserialize, Serialize};

/// Number of usable data carriers in HomePlug AV (1155 total, 917 enabled
/// in the North American mask).
pub const NUM_CARRIERS: usize = 917;

/// Per-carrier modulations HomePlug AV supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// Carrier masked or too noisy to use.
    Off,
    /// BPSK — 1 bit/carrier/symbol.
    Bpsk,
    /// QPSK — 2 bits.
    Qpsk,
    /// 8-QAM — 3 bits.
    Qam8,
    /// 16-QAM — 4 bits.
    Qam16,
    /// 64-QAM — 6 bits.
    Qam64,
    /// 256-QAM — 8 bits.
    Qam256,
    /// 1024-QAM — 10 bits (HPAV's densest).
    Qam1024,
}

impl Modulation {
    /// All modulations in increasing density.
    pub const LADDER: [Modulation; 8] = [
        Modulation::Off,
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam8,
        Modulation::Qam16,
        Modulation::Qam64,
        Modulation::Qam256,
        Modulation::Qam1024,
    ];

    /// Bits per carrier per OFDM symbol.
    pub fn bits(self) -> u32 {
        match self {
            Modulation::Off => 0,
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam8 => 3,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
            Modulation::Qam1024 => 10,
        }
    }

    /// Minimum SNR (dB) at which the loading rule selects this
    /// modulation. Approximate uncoded thresholds minus HPAV's coding
    /// margin; `Off` below 0 dB.
    pub fn snr_threshold_db(self) -> f64 {
        match self {
            Modulation::Off => f64::NEG_INFINITY,
            Modulation::Bpsk => 0.0,
            Modulation::Qpsk => 4.0,
            Modulation::Qam8 => 8.0,
            Modulation::Qam16 => 11.0,
            Modulation::Qam64 => 17.0,
            Modulation::Qam256 => 23.0,
            Modulation::Qam1024 => 29.0,
        }
    }

    /// The densest modulation supported at `snr_db`.
    pub fn for_snr(snr_db: f64) -> Modulation {
        let mut chosen = Modulation::Off;
        for m in Modulation::LADDER {
            if m != Modulation::Off && snr_db >= m.snr_threshold_db() {
                chosen = m;
            }
        }
        chosen
    }
}

/// A tone map: one modulation per carrier for one directed link.
///
/// # Examples
///
/// ```
/// use plc_phy::tonemap::{Modulation, ToneMap};
///
/// // A clean 30 dB channel loads 1024-QAM on every carrier.
/// let tm = ToneMap::flat(30.0);
/// assert_eq!(tm.carriers()[0], Modulation::Qam1024);
/// assert_eq!(tm.bits_per_symbol(), 10 * 917);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToneMap {
    carriers: Vec<Modulation>,
}

impl ToneMap {
    /// Load every carrier according to its SNR. `snr_db` must have
    /// [`NUM_CARRIERS`] entries (use [`ToneMap::flat`] for a scalar SNR).
    pub fn from_snrs(snr_db: &[f64]) -> Self {
        assert_eq!(snr_db.len(), NUM_CARRIERS, "one SNR per carrier");
        ToneMap {
            carriers: snr_db.iter().map(|&s| Modulation::for_snr(s)).collect(),
        }
    }

    /// A flat tone map: the same SNR on all carriers.
    pub fn flat(snr_db: f64) -> Self {
        ToneMap {
            carriers: vec![Modulation::for_snr(snr_db); NUM_CARRIERS],
        }
    }

    /// The per-carrier modulations.
    pub fn carriers(&self) -> &[Modulation] {
        &self.carriers
    }

    /// Payload bits carried by one OFDM symbol under this map.
    pub fn bits_per_symbol(&self) -> u64 {
        self.carriers.iter().map(|m| m.bits() as u64).sum()
    }

    /// Number of active (non-`Off`) carriers.
    pub fn active_carriers(&self) -> usize {
        self.carriers
            .iter()
            .filter(|&&m| m != Modulation::Off)
            .count()
    }

    /// Average bits per active carrier (`NaN` if none).
    pub fn mean_bits_per_active_carrier(&self) -> f64 {
        let active = self.active_carriers();
        if active == 0 {
            f64::NAN
        } else {
            self.bits_per_symbol() as f64 / active as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        let mut prev_bits = 0;
        let mut prev_thr = f64::NEG_INFINITY;
        for m in Modulation::LADDER {
            assert!(m.bits() >= prev_bits);
            assert!(m.snr_threshold_db() >= prev_thr);
            prev_bits = m.bits();
            prev_thr = m.snr_threshold_db();
        }
    }

    #[test]
    fn loading_rule_picks_densest_supported() {
        assert_eq!(Modulation::for_snr(-5.0), Modulation::Off);
        assert_eq!(Modulation::for_snr(0.0), Modulation::Bpsk);
        assert_eq!(Modulation::for_snr(10.9), Modulation::Qam8);
        assert_eq!(Modulation::for_snr(11.0), Modulation::Qam16);
        assert_eq!(Modulation::for_snr(28.0), Modulation::Qam256);
        assert_eq!(Modulation::for_snr(50.0), Modulation::Qam1024);
    }

    #[test]
    fn flat_map_bits() {
        let tm = ToneMap::flat(29.0); // 1024-QAM everywhere
        assert_eq!(tm.bits_per_symbol(), 10 * NUM_CARRIERS as u64);
        assert_eq!(tm.active_carriers(), NUM_CARRIERS);
        assert_eq!(tm.mean_bits_per_active_carrier(), 10.0);
    }

    #[test]
    fn dead_channel_carries_nothing() {
        let tm = ToneMap::flat(-10.0);
        assert_eq!(tm.bits_per_symbol(), 0);
        assert_eq!(tm.active_carriers(), 0);
        assert!(tm.mean_bits_per_active_carrier().is_nan());
    }

    #[test]
    fn mixed_snrs() {
        let mut snrs = vec![0.0; NUM_CARRIERS];
        for (i, s) in snrs.iter_mut().enumerate() {
            *s = if i < 100 { -5.0 } else { 17.0 };
        }
        let tm = ToneMap::from_snrs(&snrs);
        assert_eq!(tm.active_carriers(), NUM_CARRIERS - 100);
        assert_eq!(tm.bits_per_symbol(), 6 * (NUM_CARRIERS as u64 - 100));
    }

    #[test]
    #[should_panic(expected = "one SNR per carrier")]
    fn wrong_carrier_count_rejected() {
        ToneMap::from_snrs(&[10.0; 5]);
    }
}
