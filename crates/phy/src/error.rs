//! Per-physical-block error probabilities.
//!
//! §4.1 of the report lists channel errors among the unmodelled pieces:
//! "there is no model of the bit error probability for HomePlug AV
//! devices" and "the retransmissions can involve some physical blocks
//! (PB) and not the entire frame". This module supplies the synthetic
//! stand-in: an SNR-margin → PB-error-rate curve that feeds the engines'
//! selective-retransmission extension, so the *mechanism* (per-PB
//! selective ACK and partial retransmission) can be exercised even though
//! the vendors' true error curve is unpublished.

use crate::channel::ChannelModel;
use crate::tonemap::Modulation;
use serde::{Deserialize, Serialize};

/// Maps link conditions to a per-512-byte-PB error probability.
///
/// Model: each carrier is loaded to its threshold with `margin_db` of
/// spare SNR; the resulting symbol-error rate follows a logistic curve in
/// the margin (turbo-coded links have sharp waterfalls), and a PB fails
/// if any of its symbols does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PbErrorModel {
    /// SNR margin above the loading thresholds (dB). The bit-loading rule
    /// in [`Modulation::for_snr`] leaves 0–6 dB depending on where the
    /// SNR falls between thresholds.
    pub margin_db: f64,
    /// Waterfall steepness (dB per decade of error rate); ≈ 1.5 dB for
    /// turbo-coded HPAV-class links.
    pub steepness_db: f64,
}

impl PbErrorModel {
    /// Model at a given margin with the default waterfall.
    pub fn with_margin(margin_db: f64) -> Self {
        PbErrorModel {
            margin_db,
            steepness_db: 1.5,
        }
    }

    /// Error-free limit (infinite margin).
    pub fn ideal() -> Self {
        Self::with_margin(f64::INFINITY)
    }

    /// Derive the *average* margin of a live channel at time `t_us`: how
    /// far each active carrier sits above the threshold of the modulation
    /// loaded on it.
    pub fn from_channel(ch: &ChannelModel, t_us: f64) -> Self {
        let snrs = ch.snr_profile_db(t_us);
        let mut total = 0.0;
        let mut active = 0usize;
        for &s in &snrs {
            let m = Modulation::for_snr(s);
            if m != Modulation::Off {
                total += s - m.snr_threshold_db();
                active += 1;
            }
        }
        if active == 0 {
            // Dead channel: zero margin (everything errors).
            PbErrorModel::with_margin(0.0)
        } else {
            PbErrorModel::with_margin(total / active as f64)
        }
    }

    /// Probability that one 512-byte physical block is received in error.
    pub fn pb_error_prob(&self) -> f64 {
        if self.margin_db.is_infinite() {
            return 0.0;
        }
        // Logistic waterfall centred at 0 dB margin where PER = 0.5.
        let x = self.margin_db / self.steepness_db;
        1.0 / (1.0 + (x * std::f64::consts::LN_10).exp())
    }

    /// Probability that an MPDU of `num_pbs` blocks is delivered with
    /// every PB clean.
    pub fn mpdu_clean_prob(&self, num_pbs: u16) -> f64 {
        (1.0 - self.pb_error_prob()).powi(num_pbs as i32)
    }

    /// Expected transmissions to deliver all of `num_pbs` blocks with
    /// per-PB selective retransmission (each round retransmits only the
    /// still-errored blocks): `E[max of num_pbs geometrics]`.
    pub fn expected_rounds(&self, num_pbs: u16) -> f64 {
        expected_rounds_for(self.pb_error_prob(), num_pbs)
    }
}

/// `E[max of num_pbs geometrics]` at a raw per-PB error probability `p` —
/// the expected selective-retransmission rounds per frame, usable without
/// constructing a margin-based model.
pub fn expected_rounds_for(p: f64, num_pbs: u16) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // E[max] = Σ_{r≥1} P(max ≥ r) = Σ_{r≥0} (1 − (1 − p^r)^k).
    let k = num_pbs as i32;
    let mut sum = 0.0;
    let mut p_r: f64 = 1.0; // p^r for r = 0
    for _ in 0..10_000 {
        let term = 1.0 - (1.0 - p_r).powi(k);
        sum += term;
        if term < 1e-15 {
            break;
        }
        p_r *= p;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_error_free() {
        let m = PbErrorModel::ideal();
        assert_eq!(m.pb_error_prob(), 0.0);
        assert_eq!(m.mpdu_clean_prob(4), 1.0);
        assert_eq!(m.expected_rounds(4), 1.0);
    }

    #[test]
    fn waterfall_shape() {
        let at = |db: f64| PbErrorModel::with_margin(db).pb_error_prob();
        assert!((at(0.0) - 0.5).abs() < 1e-12, "PER = 1/2 at zero margin");
        assert!(at(3.0) < 0.01, "3 dB margin → ≪1%: {}", at(3.0));
        assert!(at(6.0) < 1e-4);
        assert!(at(-3.0) > 0.99, "negative margin → almost sure loss");
        // Monotone decreasing.
        assert!(at(1.0) > at(2.0) && at(2.0) > at(4.0));
    }

    #[test]
    fn mpdu_clean_prob_compounds() {
        let m = PbErrorModel::with_margin(1.5); // PER = 1/(1+10) ≈ 0.0909
        let p = m.pb_error_prob();
        assert!((m.mpdu_clean_prob(4) - (1.0 - p).powi(4)).abs() < 1e-12);
        assert!(m.mpdu_clean_prob(4) < m.mpdu_clean_prob(1));
    }

    #[test]
    fn expected_rounds_matches_known_values() {
        // Single block: E[rounds] = 1/(1−p).
        let m = PbErrorModel::with_margin(1.5);
        let p = m.pb_error_prob();
        assert!((m.expected_rounds(1) - 1.0 / (1.0 - p)).abs() < 1e-9);
        // More blocks → more rounds (max of geometrics).
        assert!(m.expected_rounds(8) > m.expected_rounds(1));
        // But selective retransmission keeps it close to 1 at low PER.
        let low = PbErrorModel::with_margin(4.5);
        assert!(low.expected_rounds(4) < 1.01);
    }

    #[test]
    fn from_channel_tracks_quality() {
        let good = PbErrorModel::from_channel(&ChannelModel::power_strip(), 0.0);
        let bad = PbErrorModel::from_channel(&ChannelModel::long_link(), 0.0);
        assert!(good.pb_error_prob() <= bad.pb_error_prob());
        assert!(good.pb_error_prob() < 0.2);
    }

    #[test]
    fn dead_channel_always_errors_half_plus() {
        let dead = ChannelModel {
            snr0_db: -20.0,
            ..ChannelModel::short_link()
        };
        let m = PbErrorModel::from_channel(&dead, 0.0);
        assert!(m.pb_error_prob() >= 0.5);
    }
}
