//! A synthetic power-line channel model.
//!
//! Power-line links have no published, validated channel simulator (the
//! report: "there is no model of the bit error probability for HomePlug
//! AV devices"). This model captures the three properties that matter to
//! the MAC-level experiments and are well documented in the PLC
//! measurement literature:
//!
//! * **log-distance attenuation** — SNR falls roughly linearly in dB with
//!   cable run length (plus per-outlet insertion loss);
//! * **frequency selectivity** — notches from multipath reflections at
//!   stub branches, modelled as deterministic sinusoidal ripple plus
//!   seeded per-carrier fading;
//! * **mains-cycle variation** — the channel is *periodically
//!   time-varying, synchronous to the 50/60 Hz mains*, because appliance
//!   impedances switch with the voltage; HomePlug AV even keeps separate
//!   tone maps per mains-cycle region.

use crate::tonemap::{ToneMap, NUM_CARRIERS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Synthetic channel between two outlets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Transmit SNR at zero distance (dB) — transmit PSD over noise floor.
    pub snr0_db: f64,
    /// Attenuation per metre of cable (dB/m); PLC literature reports
    /// 0.2–2 dB/m depending on cable class.
    pub atten_db_per_m: f64,
    /// Cable run length (m).
    pub distance_m: f64,
    /// Peak-to-peak depth of frequency-selective ripple (dB).
    pub ripple_db: f64,
    /// Standard deviation of seeded per-carrier fading (dB).
    pub fading_sigma_db: f64,
    /// Peak-to-peak swing of the mains-cycle variation (dB).
    pub mains_swing_db: f64,
    /// Mains frequency (Hz); 50 in Europe (the paper's testbed), 60 in NA.
    pub mains_hz: f64,
    /// Seed for the per-carrier fading draw.
    pub seed: u64,
}

impl ChannelModel {
    /// A short, clean in-room link: high SNR, mild ripple.
    pub fn short_link() -> Self {
        ChannelModel {
            snr0_db: 38.0,
            atten_db_per_m: 0.4,
            distance_m: 5.0,
            ripple_db: 4.0,
            fading_sigma_db: 1.5,
            mains_swing_db: 2.0,
            mains_hz: 50.0,
            seed: 1,
        }
    }

    /// A cross-home link through the breaker panel: heavy attenuation and
    /// selectivity.
    pub fn long_link() -> Self {
        ChannelModel {
            snr0_db: 38.0,
            atten_db_per_m: 0.6,
            distance_m: 40.0,
            ripple_db: 10.0,
            fading_sigma_db: 3.0,
            mains_swing_db: 5.0,
            mains_hz: 50.0,
            seed: 2,
        }
    }

    /// The paper's power-strip setup: all stations on one strip, "ideal"
    /// conditions — essentially zero distance.
    pub fn power_strip() -> Self {
        ChannelModel {
            distance_m: 1.0,
            ripple_db: 2.0,
            fading_sigma_db: 0.5,
            mains_swing_db: 1.0,
            ..Self::short_link()
        }
    }

    /// Mean (carrier- and time-averaged) SNR of the link in dB.
    pub fn mean_snr_db(&self) -> f64 {
        self.snr0_db - self.atten_db_per_m * self.distance_m
    }

    /// Per-carrier SNR at time `t_us` (µs since epoch), including ripple,
    /// seeded fading and the mains-cycle term.
    pub fn snr_profile_db(&self, t_us: f64) -> Vec<f64> {
        let base = self.mean_snr_db();
        let mains_phase = 2.0 * std::f64::consts::PI * self.mains_hz * (t_us / 1.0e6);
        // Full-wave-rectified appliances switch twice per cycle.
        let mains = 0.5 * self.mains_swing_db * (2.0 * mains_phase).sin();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (0..NUM_CARRIERS)
            .map(|c| {
                let x = c as f64 / NUM_CARRIERS as f64;
                // Two incommensurate ripple periods approximate multipath
                // notching across the band.
                let ripple = 0.5
                    * self.ripple_db
                    * (0.6 * (2.0 * std::f64::consts::PI * 7.3 * x).sin()
                        + 0.4 * (2.0 * std::f64::consts::PI * 17.9 * x).sin());
                // Seeded fading: deterministic per (seed, carrier).
                let fade: f64 = rng.gen_range(-1.0..1.0) * self.fading_sigma_db * 1.732;
                base + ripple + fade + mains
            })
            .collect()
    }

    /// The tone map this link negotiates at time `t_us`.
    pub fn tone_map(&self, t_us: f64) -> ToneMap {
        ToneMap::from_snrs(&self.snr_profile_db(t_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attenuation_reduces_rate() {
        let short = ChannelModel::short_link();
        let long = ChannelModel::long_link();
        assert!(long.mean_snr_db() < short.mean_snr_db());
        let bs = short.tone_map(0.0).bits_per_symbol();
        let bl = long.tone_map(0.0).bits_per_symbol();
        assert!(
            bl < bs,
            "long link must carry fewer bits/symbol: {bl} vs {bs}"
        );
        assert!(bs > 0);
    }

    #[test]
    fn profile_is_deterministic() {
        let ch = ChannelModel::short_link();
        assert_eq!(ch.snr_profile_db(123.0), ch.snr_profile_db(123.0));
        let ch2 = ChannelModel {
            seed: 99,
            ..ch.clone()
        };
        assert_ne!(ch.snr_profile_db(0.0), ch2.snr_profile_db(0.0));
    }

    #[test]
    fn mains_cycle_moves_the_channel() {
        let ch = ChannelModel::long_link();
        // Half a mains-variation period (the variation runs at 2×mains):
        // 1/(4·50 Hz) = 5 ms apart, the mains term flips sign.
        let a = ch.tone_map(0.0).bits_per_symbol();
        let b = ch.tone_map(2_500.0).bits_per_symbol();
        let c = ch.tone_map(7_500.0).bits_per_symbol();
        assert!(
            b != c || a != b,
            "tone map must vary over the mains cycle: {a} {b} {c}"
        );
    }

    #[test]
    fn period_is_the_mains_half_cycle() {
        let ch = ChannelModel::long_link();
        // The variation has period 10 ms at 50 Hz (twice per cycle).
        let a = ch.snr_profile_db(1_000.0);
        let b = ch.snr_profile_db(1_000.0 + 10_000.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn power_strip_is_near_ideal() {
        let ch = ChannelModel::power_strip();
        let tm = ch.tone_map(0.0);
        // On the strip nearly every carrier should be at high order.
        assert!(tm.mean_bits_per_active_carrier() > 8.0);
        assert_eq!(tm.active_carriers(), NUM_CARRIERS);
    }
}
