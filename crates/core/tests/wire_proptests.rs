//! Property tests over the wire formats: every structure round-trips
//! bit-exactly for arbitrary field values, and no parser panics on
//! arbitrary bytes (they return errors instead — the robustness a
//! sniffer-facing decoder needs).

use plc_core::addr::{MacAddr, Tei};
use plc_core::frame::{crc32, DelimiterType, SelectiveAck, SofDelimiter, SOF_WIRE_LEN};
use plc_core::mme::{
    mmtype, mmtype_split, AmpStatCnf, AmpStatReq, Direction, MmVariant, MmeHeader, SnifferInd,
    SnifferReq, StatsControl, MMTYPE_SNIFFER, MMTYPE_STATS,
};
use plc_core::priority::Priority;
use proptest::prelude::*;

fn arb_priority() -> impl Strategy<Value = Priority> {
    (0u8..4).prop_map(|b| Priority::from_bits(b).unwrap())
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_sof() -> impl Strategy<Value = SofDelimiter> {
    (
        any::<u8>(),
        any::<u8>(),
        arb_priority(),
        0u8..4,
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(
            |(src, dst, priority, mpdu_cnt, num_pbs, fl_units)| SofDelimiter {
                src: Tei(src),
                dst: Tei(dst),
                priority,
                mpdu_cnt,
                num_pbs,
                fl_units,
            },
        )
}

proptest! {
    #[test]
    fn sof_round_trips(sof in arb_sof()) {
        let wire = sof.encode();
        prop_assert_eq!(SofDelimiter::decode(&wire).unwrap(), sof);
    }

    #[test]
    fn sof_single_bit_corruption_detected(sof in arb_sof(), byte in 0usize..SOF_WIRE_LEN, bit in 0u8..8) {
        let mut wire = sof.encode();
        wire[byte] ^= 1 << bit;
        // Either rejected outright (CRC/type/range) or — never — silently
        // accepted as a different delimiter with a valid CRC. CRC-32 has
        // Hamming distance ≥ 2 over 16 bytes, so a single flipped bit in
        // the covered region must always be caught; flips inside the CRC
        // field itself mismatch the recomputed value.
        prop_assert!(SofDelimiter::decode(&wire).is_err());
    }

    #[test]
    fn sof_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = SofDelimiter::decode(&bytes);
    }

    #[test]
    fn mme_header_round_trips(
        oda in arb_mac(),
        osa in arb_mac(),
        mmv in any::<u8>(),
        mm in any::<u16>(),
        fmi in any::<u16>(),
    ) {
        let h = MmeHeader { oda, osa, mmv, mmtype: mm, fmi };
        let wire = h.encode();
        prop_assert_eq!(MmeHeader::decode(&wire).unwrap(), h);
    }

    #[test]
    fn mme_header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = MmeHeader::decode(&bytes);
    }

    #[test]
    fn mmtype_compose_split(base in any::<u16>(), v in 0u16..4) {
        let variant = match v {
            0 => MmVariant::Req,
            1 => MmVariant::Cnf,
            2 => MmVariant::Ind,
            _ => MmVariant::Rsp,
        };
        let t = mmtype(base, variant);
        let (b, var) = mmtype_split(t);
        prop_assert_eq!(b, base & !0b11);
        prop_assert_eq!(var, variant);
    }

    #[test]
    fn ampstat_req_round_trips(
        reset in any::<bool>(),
        dir in any::<bool>(),
        priority in arb_priority(),
        peer in arb_mac(),
        oda in arb_mac(),
        osa in arb_mac(),
    ) {
        let req = AmpStatReq {
            control: if reset { StatsControl::Reset } else { StatsControl::Read },
            direction: if dir { Direction::Tx } else { Direction::Rx },
            priority,
            peer,
        };
        let wire = req.encode(&MmeHeader::request(oda, osa, MMTYPE_STATS));
        prop_assert_eq!(AmpStatReq::decode(&wire).unwrap(), req);
    }

    #[test]
    fn ampstat_cnf_round_trips(acked in any::<u64>(), collided in any::<u64>(), oda in arb_mac(), osa in arb_mac()) {
        let cnf = AmpStatCnf { acked, collided };
        let wire = cnf.encode(&MmeHeader::request(oda, osa, MMTYPE_STATS));
        prop_assert_eq!(AmpStatCnf::decode(&wire).unwrap(), cnf);
        // The report's byte offsets hold for every value.
        prop_assert_eq!(&wire[24..32], &acked.to_le_bytes());
        prop_assert_eq!(&wire[32..40], &collided.to_le_bytes());
    }

    #[test]
    fn sniffer_ind_round_trips(ts_bits in any::<u32>(), sof in arb_sof(), host in arb_mac(), dev in arb_mac()) {
        // Finite timestamps only (NaN won't compare equal).
        let ts = ts_bits as f64 / 7.0;
        let ind = SnifferInd { timestamp_us: ts, sof };
        let header = MmeHeader::request(host, dev, MMTYPE_SNIFFER);
        let wire = ind.encode(&header);
        prop_assert_eq!(SnifferInd::decode(&wire).unwrap(), ind);
    }

    #[test]
    fn sniffer_req_round_trips(enable in any::<bool>(), oda in arb_mac(), osa in arb_mac()) {
        let req = SnifferReq { enable };
        let wire = req.encode(&MmeHeader::request(oda, osa, MMTYPE_SNIFFER));
        prop_assert_eq!(SnifferReq::decode(&wire).unwrap(), req);
    }

    #[test]
    fn delimiter_type_round_trips(b in 0u8..4) {
        let ty = DelimiterType::from_byte(b).unwrap();
        prop_assert_eq!(ty.to_byte(), b);
    }

    #[test]
    fn crc32_detects_any_single_byte_change(data in proptest::collection::vec(any::<u8>(), 1..128), idx in any::<prop::sample::Index>(), delta in 1u8..=255) {
        let mut mutated = data.clone();
        let i = idx.index(mutated.len());
        mutated[i] = mutated[i].wrapping_add(delta);
        prop_assert_ne!(crc32(&data), crc32(&mutated));
    }

    #[test]
    fn mac_addr_display_parse_round_trips(mac in arb_mac()) {
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        prop_assert_eq!(parsed, mac);
    }

    #[test]
    fn sack_classification_is_partition(pb_ok in proptest::collection::vec(any::<bool>(), 0..32)) {
        let ack = SelectiveAck { to: Tei(1), pb_ok };
        // An ACK is success, collision-indication, or partial — never two.
        let states = [ack.is_success(), ack.indicates_collision()];
        prop_assert!(states.iter().filter(|&&s| s).count() <= 1);
        if ack.pb_ok.is_empty() {
            prop_assert!(!ack.is_success() && !ack.indicates_collision());
        }
        prop_assert_eq!(
            ack.num_failed(),
            ack.pb_ok.iter().filter(|&&ok| !ok).count()
        );
    }
}
