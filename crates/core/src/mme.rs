//! Management message entries (MMEs): the control-plane messages the
//! paper's tools speak to the PLC firmware.
//!
//! The two tools of the paper's experimental framework drive the devices
//! exclusively through vendor-specific MMEs:
//!
//! * **ampstat** (Atheros Open PLC Toolkit) sends MMType `0xA030` to reset
//!   or retrieve the acknowledged/collided frame counters of a link. In the
//!   reply, "the bytes 25–32 … represent the number of acknowledged frames
//!   and the bytes 33–40 represent the number of collided frames" — those
//!   1-indexed byte positions are honoured exactly by
//!   [`AmpStatCnf::encode`] / [`AmpStatCnf::decode`].
//! * **faifa** sends MMType `0xA034` to toggle the *sniffer mode*, after
//!   which the device delivers one indication per captured SoF delimiter.
//!
//! The MME header follows the HomePlug AV layout: destination and source
//! MAC addresses, the `0x88E1` Ethertype, the MM version, the 16-bit
//! `MMType` (whose two low bits encode REQ/CNF/IND/RSP), and the
//! fragmentation field — 19 bytes in total, followed by the vendor OUI for
//! vendor-specific messages.

use crate::addr::MacAddr;
use crate::error::{Error, Result};
use crate::frame::{SofDelimiter, SOF_WIRE_LEN};
use crate::priority::Priority;
use serde::{Deserialize, Serialize};

/// The HomePlug AV Ethertype carried in the MME header.
pub const ETHERTYPE_HOMEPLUG_AV: u16 = 0x88E1;

/// The Intellon/Atheros vendor OUI used by INT6300-era vendor MMEs.
pub const VENDOR_OUI: [u8; 3] = [0x00, 0xB0, 0x52];

/// Length of the MME header on the wire (ODA 6 + OSA 6 + Ethertype 2 +
/// MMV 1 + MMType 2 + FMI 2).
pub const MME_HEADER_LEN: usize = 19;

/// Offset of the first vendor payload byte (header + 3-byte OUI).
pub const VENDOR_PAYLOAD_OFFSET: usize = MME_HEADER_LEN + 3;

/// Base MMType of the vendor statistics message the `ampstat` tool uses.
pub const MMTYPE_STATS: u16 = 0xA030;

/// Base MMType of the vendor sniffer-mode message the `faifa` tool uses.
pub const MMTYPE_SNIFFER: u16 = 0xA034;

/// The four MME variants encoded in the two low bits of the MMType.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MmVariant {
    /// Request (host → device).
    Req,
    /// Confirm (device → host, answers a request).
    Cnf,
    /// Indication (device → host, unsolicited).
    Ind,
    /// Response (host → device, answers an indication).
    Rsp,
}

impl MmVariant {
    /// The two-bit encoding.
    pub fn to_bits(self) -> u16 {
        match self {
            MmVariant::Req => 0,
            MmVariant::Cnf => 1,
            MmVariant::Ind => 2,
            MmVariant::Rsp => 3,
        }
    }

    /// Decode from the two low bits of an MMType.
    pub fn from_mmtype(mmtype: u16) -> Self {
        match mmtype & 0b11 {
            0 => MmVariant::Req,
            1 => MmVariant::Cnf,
            2 => MmVariant::Ind,
            _ => MmVariant::Rsp,
        }
    }
}

/// Compose an MMType from its base (variant bits zero) and variant.
pub fn mmtype(base: u16, variant: MmVariant) -> u16 {
    (base & !0b11) | variant.to_bits()
}

/// Split an MMType into base and variant.
pub fn mmtype_split(t: u16) -> (u16, MmVariant) {
    (t & !0b11, MmVariant::from_mmtype(t))
}

/// The 19-byte MME header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmeHeader {
    /// Destination MAC address (ODA).
    pub oda: MacAddr,
    /// Source MAC address (OSA).
    pub osa: MacAddr,
    /// Management message version.
    pub mmv: u8,
    /// Full MMType including the variant bits — "The PLC device
    /// distinguishes the MME requests using the field MMType".
    pub mmtype: u16,
    /// Fragmentation management information (unused by our tools; always 0).
    pub fmi: u16,
}

impl MmeHeader {
    /// Header for a vendor request.
    pub fn request(oda: MacAddr, osa: MacAddr, base: u16) -> Self {
        MmeHeader {
            oda,
            osa,
            mmv: 1,
            mmtype: mmtype(base, MmVariant::Req),
            fmi: 0,
        }
    }

    /// Header for the confirm answering `req` (swaps addresses, bumps the
    /// variant to CNF).
    pub fn confirm_to(req: &MmeHeader) -> Self {
        MmeHeader {
            oda: req.osa,
            osa: req.oda,
            mmv: req.mmv,
            mmtype: mmtype(req.mmtype, MmVariant::Cnf),
            fmi: 0,
        }
    }

    /// The variant encoded in the MMType.
    pub fn variant(&self) -> MmVariant {
        MmVariant::from_mmtype(self.mmtype)
    }

    /// The MMType base (variant bits cleared).
    pub fn base(&self) -> u16 {
        self.mmtype & !0b11
    }

    /// Encode to the 19-byte wire format.
    pub fn encode(&self) -> [u8; MME_HEADER_LEN] {
        let mut b = [0u8; MME_HEADER_LEN];
        b[0..6].copy_from_slice(self.oda.as_bytes());
        b[6..12].copy_from_slice(self.osa.as_bytes());
        b[12..14].copy_from_slice(&ETHERTYPE_HOMEPLUG_AV.to_be_bytes());
        b[14] = self.mmv;
        // MMType is little-endian on the HomePlug AV wire.
        b[15..17].copy_from_slice(&self.mmtype.to_le_bytes());
        b[17..19].copy_from_slice(&self.fmi.to_le_bytes());
        b
    }

    /// Parse the wire format.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < MME_HEADER_LEN {
            return Err(Error::Truncated {
                what: "MME header",
                needed: MME_HEADER_LEN,
                got: buf.len(),
            });
        }
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]);
        if ethertype != ETHERTYPE_HOMEPLUG_AV {
            return Err(Error::FieldRange {
                field: "Ethertype",
                value: ethertype as u64,
                max: ETHERTYPE_HOMEPLUG_AV as u64,
            });
        }
        let mut oda = [0u8; 6];
        oda.copy_from_slice(&buf[0..6]);
        let mut osa = [0u8; 6];
        osa.copy_from_slice(&buf[6..12]);
        Ok(MmeHeader {
            oda: MacAddr(oda),
            osa: MacAddr(osa),
            mmv: buf[14],
            mmtype: u16::from_le_bytes([buf[15], buf[16]]),
            fmi: u16::from_le_bytes([buf[17], buf[18]]),
        })
    }
}

/// Direction selector of an `ampstat` query: transmit-side or receive-side
/// counters ("given the destination MAC address, the priority, and the
/// direction (transmission or reception) of a specific link").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Frames transmitted by the queried device on the link.
    Tx,
    /// Frames received by the queried device on the link.
    Rx,
}

impl Direction {
    fn to_byte(self) -> u8 {
        match self {
            Direction::Tx => 0,
            Direction::Rx => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(Direction::Tx),
            1 => Ok(Direction::Rx),
            other => Err(Error::FieldRange {
                field: "direction",
                value: other as u64,
                max: 1,
            }),
        }
    }
}

/// What an `ampstat` request asks the firmware to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatsControl {
    /// Read the counters, leaving them running.
    Read,
    /// Reset the counters to zero ("we reset the statistics of the frames
    /// transmitted at all the stations at the beginning of each test").
    Reset,
}

/// The vendor statistics request (MMType `0xA030` REQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmpStatReq {
    /// Read or reset.
    pub control: StatsControl,
    /// Direction of the link to query.
    pub direction: Direction,
    /// Priority class of the queried link.
    pub priority: Priority,
    /// Peer MAC address of the link (the destination station `D` in the
    /// paper's tests).
    pub peer: MacAddr,
}

impl AmpStatReq {
    /// Vendor-payload length of the request.
    pub const PAYLOAD_LEN: usize = 9;

    /// Encode the full MME (header + OUI + payload).
    pub fn encode(&self, header: &MmeHeader) -> Vec<u8> {
        let mut out = Vec::with_capacity(VENDOR_PAYLOAD_OFFSET + Self::PAYLOAD_LEN);
        out.extend_from_slice(&header.encode());
        out.extend_from_slice(&VENDOR_OUI);
        out.push(match self.control {
            StatsControl::Read => 0,
            StatsControl::Reset => 1,
        });
        out.push(self.direction.to_byte());
        out.push(self.priority.to_bits());
        out.extend_from_slice(self.peer.as_bytes());
        out
    }

    /// Decode the vendor payload of a full MME buffer (header already
    /// parsed by the caller).
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let need = VENDOR_PAYLOAD_OFFSET + Self::PAYLOAD_LEN;
        if buf.len() < need {
            return Err(Error::Truncated {
                what: "ampstat request",
                needed: need,
                got: buf.len(),
            });
        }
        let p = &buf[VENDOR_PAYLOAD_OFFSET..];
        let control = match p[0] {
            0 => StatsControl::Read,
            1 => StatsControl::Reset,
            other => {
                return Err(Error::FieldRange {
                    field: "stats control",
                    value: other as u64,
                    max: 1,
                })
            }
        };
        let direction = Direction::from_byte(p[1])?;
        let priority = Priority::from_bits(p[2]).ok_or(Error::FieldRange {
            field: "priority",
            value: p[2] as u64,
            max: 3,
        })?;
        let mut peer = [0u8; 6];
        peer.copy_from_slice(&p[3..9]);
        Ok(AmpStatReq {
            control,
            direction,
            priority,
            peer: MacAddr(peer),
        })
    }
}

/// The vendor statistics confirm (MMType `0xA030` CNF): the acknowledged
/// and collided frame counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AmpStatCnf {
    /// Number of acknowledged MPDUs (`Aᵢ`). Per the 1901 selective-ACK
    /// behaviour this **includes** collided-but-delimiter-decoded MPDUs.
    pub acked: u64,
    /// Number of collided MPDUs (`Cᵢ`).
    pub collided: u64,
}

/// 1-indexed byte positions of the counters in the reply, exactly as the
/// report states: acknowledged in bytes 25–32, collided in bytes 33–40.
/// (0-indexed: `24..32` and `32..40`.)
pub const AMPSTAT_ACKED_RANGE: core::ops::Range<usize> = 24..32;
/// See [`AMPSTAT_ACKED_RANGE`].
pub const AMPSTAT_COLLIDED_RANGE: core::ops::Range<usize> = 32..40;

impl AmpStatCnf {
    /// Total reply length.
    pub const WIRE_LEN: usize = 40;

    /// Encode the full reply MME. The header and OUI occupy bytes 1–22
    /// (1-indexed), bytes 23–24 carry a status word, and the counters sit at
    /// the report's documented offsets.
    pub fn encode(&self, header: &MmeHeader) -> Vec<u8> {
        let mut out = vec![0u8; Self::WIRE_LEN];
        out[..MME_HEADER_LEN].copy_from_slice(&header.encode());
        out[MME_HEADER_LEN..MME_HEADER_LEN + 3].copy_from_slice(&VENDOR_OUI);
        // Bytes 23–24 (1-indexed): status = 0 (success).
        out[AMPSTAT_ACKED_RANGE].copy_from_slice(&self.acked.to_le_bytes());
        out[AMPSTAT_COLLIDED_RANGE].copy_from_slice(&self.collided.to_le_bytes());
        out
    }

    /// Decode a reply buffer.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < Self::WIRE_LEN {
            return Err(Error::Truncated {
                what: "ampstat reply",
                needed: Self::WIRE_LEN,
                got: buf.len(),
            });
        }
        let mut acked = [0u8; 8];
        acked.copy_from_slice(&buf[AMPSTAT_ACKED_RANGE]);
        let mut collided = [0u8; 8];
        collided.copy_from_slice(&buf[AMPSTAT_COLLIDED_RANGE]);
        Ok(AmpStatCnf {
            acked: u64::from_le_bytes(acked),
            collided: u64::from_le_bytes(collided),
        })
    }
}

/// The sniffer-mode request (MMType `0xA034` REQ) — faifa "activates the
/// 'sniffer' mode of the devices".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnifferReq {
    /// Enable or disable capture.
    pub enable: bool,
}

impl SnifferReq {
    /// Encode the full MME.
    pub fn encode(&self, header: &MmeHeader) -> Vec<u8> {
        let mut out = Vec::with_capacity(VENDOR_PAYLOAD_OFFSET + 1);
        out.extend_from_slice(&header.encode());
        out.extend_from_slice(&VENDOR_OUI);
        out.push(self.enable as u8);
        out
    }

    /// Decode the vendor payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let need = VENDOR_PAYLOAD_OFFSET + 1;
        if buf.len() < need {
            return Err(Error::Truncated {
                what: "sniffer request",
                needed: need,
                got: buf.len(),
            });
        }
        match buf[VENDOR_PAYLOAD_OFFSET] {
            0 => Ok(SnifferReq { enable: false }),
            1 => Ok(SnifferReq { enable: true }),
            other => Err(Error::FieldRange {
                field: "sniffer enable",
                value: other as u64,
                max: 1,
            }),
        }
    }
}

/// A sniffer indication (MMType `0xA034` IND): one captured SoF delimiter
/// with a device timestamp. faifa "captures and prints the fields of the
/// preambles of PLC frames" — only the delimiter, never the payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnifferInd {
    /// Device capture timestamp in microseconds.
    pub timestamp_us: f64,
    /// The captured delimiter fields.
    pub sof: SofDelimiter,
}

impl SnifferInd {
    /// Total indication length: vendor payload is an 8-byte timestamp plus
    /// the 16-byte encoded delimiter.
    pub const WIRE_LEN: usize = VENDOR_PAYLOAD_OFFSET + 8 + SOF_WIRE_LEN;

    /// Encode the full indication MME.
    pub fn encode(&self, header: &MmeHeader) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_LEN);
        out.extend_from_slice(&header.encode());
        out.extend_from_slice(&VENDOR_OUI);
        out.extend_from_slice(&self.timestamp_us.to_le_bytes());
        out.extend_from_slice(&self.sof.encode());
        out
    }

    /// Decode a full indication buffer.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < Self::WIRE_LEN {
            return Err(Error::Truncated {
                what: "sniffer indication",
                needed: Self::WIRE_LEN,
                got: buf.len(),
            });
        }
        let p = &buf[VENDOR_PAYLOAD_OFFSET..];
        let mut ts = [0u8; 8];
        ts.copy_from_slice(&p[..8]);
        let sof = SofDelimiter::decode(&p[8..8 + SOF_WIRE_LEN])?;
        Ok(SnifferInd {
            timestamp_us: f64::from_le_bytes(ts),
            sof,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Tei;

    fn hdr(base: u16) -> MmeHeader {
        MmeHeader::request(MacAddr::station(0), MacAddr::station(1), base)
    }

    #[test]
    fn variant_bits() {
        assert_eq!(mmtype(MMTYPE_STATS, MmVariant::Req), 0xA030);
        assert_eq!(mmtype(MMTYPE_STATS, MmVariant::Cnf), 0xA031);
        assert_eq!(mmtype(MMTYPE_STATS, MmVariant::Ind), 0xA032);
        assert_eq!(mmtype(MMTYPE_STATS, MmVariant::Rsp), 0xA033);
        assert_eq!(mmtype(MMTYPE_SNIFFER, MmVariant::Ind), 0xA036);
        let (base, var) = mmtype_split(0xA031);
        assert_eq!(base, 0xA030);
        assert_eq!(var, MmVariant::Cnf);
    }

    #[test]
    fn header_round_trips() {
        let h = hdr(MMTYPE_STATS);
        let wire = h.encode();
        assert_eq!(wire.len(), MME_HEADER_LEN);
        let parsed = MmeHeader::decode(&wire).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.variant(), MmVariant::Req);
        assert_eq!(parsed.base(), MMTYPE_STATS);
    }

    #[test]
    fn header_rejects_wrong_ethertype() {
        let mut wire = hdr(MMTYPE_STATS).encode();
        wire[12] = 0x08;
        wire[13] = 0x00; // IPv4 ethertype
        assert!(MmeHeader::decode(&wire).is_err());
    }

    #[test]
    fn header_rejects_truncation() {
        let wire = hdr(MMTYPE_STATS).encode();
        assert!(MmeHeader::decode(&wire[..10]).is_err());
    }

    #[test]
    fn confirm_swaps_addresses() {
        let req = hdr(MMTYPE_STATS);
        let cnf = MmeHeader::confirm_to(&req);
        assert_eq!(cnf.oda, req.osa);
        assert_eq!(cnf.osa, req.oda);
        assert_eq!(cnf.variant(), MmVariant::Cnf);
        assert_eq!(cnf.base(), MMTYPE_STATS);
    }

    #[test]
    fn ampstat_request_round_trips() {
        let req = AmpStatReq {
            control: StatsControl::Reset,
            direction: Direction::Tx,
            priority: Priority::CA1,
            peer: MacAddr::station(9),
        };
        let wire = req.encode(&hdr(MMTYPE_STATS));
        let parsed = AmpStatReq::decode(&wire).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn ampstat_request_rejects_bad_fields() {
        let req = AmpStatReq {
            control: StatsControl::Read,
            direction: Direction::Rx,
            priority: Priority::CA3,
            peer: MacAddr::station(2),
        };
        let mut wire = req.encode(&hdr(MMTYPE_STATS));
        wire[VENDOR_PAYLOAD_OFFSET] = 7; // bad control
        assert!(AmpStatReq::decode(&wire).is_err());
        let mut wire2 = req.encode(&hdr(MMTYPE_STATS));
        wire2[VENDOR_PAYLOAD_OFFSET + 2] = 9; // bad priority
        assert!(AmpStatReq::decode(&wire2).is_err());
        assert!(AmpStatReq::decode(&wire[..20]).is_err());
    }

    #[test]
    fn ampstat_reply_counters_at_documented_offsets() {
        // The report: "the bytes 25-32 of this reply represent the number of
        // acknowledged frames and the bytes 33-40 represent the number of
        // collided frames". Verify against the raw buffer, 1-indexed.
        let cnf = AmpStatCnf {
            acked: 0x0102_0304_0506_0708,
            collided: 42,
        };
        let wire = cnf.encode(&MmeHeader::confirm_to(&hdr(MMTYPE_STATS)));
        assert_eq!(wire.len(), 40);
        // 1-indexed byte 25 is wire[24].
        assert_eq!(&wire[24..32], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&wire[32..40], &42u64.to_le_bytes());
        let parsed = AmpStatCnf::decode(&wire).unwrap();
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn ampstat_reply_rejects_truncation() {
        let cnf = AmpStatCnf {
            acked: 1,
            collided: 2,
        };
        let wire = cnf.encode(&MmeHeader::confirm_to(&hdr(MMTYPE_STATS)));
        assert!(AmpStatCnf::decode(&wire[..39]).is_err());
    }

    #[test]
    fn sniffer_request_round_trips() {
        for enable in [true, false] {
            let req = SnifferReq { enable };
            let wire = req.encode(&hdr(MMTYPE_SNIFFER));
            assert_eq!(SnifferReq::decode(&wire).unwrap(), req);
        }
    }

    #[test]
    fn sniffer_indication_round_trips() {
        let ind = SnifferInd {
            timestamp_us: 1234.5,
            sof: SofDelimiter {
                src: Tei(2),
                dst: Tei(1),
                priority: Priority::CA2,
                mpdu_cnt: 0,
                num_pbs: 4,
                fl_units: 1602,
            },
        };
        let hdr = MmeHeader {
            oda: MacAddr::BROADCAST,
            osa: MacAddr::station(0),
            mmv: 1,
            mmtype: mmtype(MMTYPE_SNIFFER, MmVariant::Ind),
            fmi: 0,
        };
        let wire = ind.encode(&hdr);
        assert_eq!(wire.len(), SnifferInd::WIRE_LEN);
        let parsed = SnifferInd::decode(&wire).unwrap();
        assert_eq!(parsed, ind);
    }

    #[test]
    fn sniffer_indication_rejects_corrupt_sof() {
        let ind = SnifferInd {
            timestamp_us: 0.0,
            sof: SofDelimiter {
                src: Tei(2),
                dst: Tei(1),
                priority: Priority::CA1,
                mpdu_cnt: 1,
                num_pbs: 1,
                fl_units: 100,
            },
        };
        let hdr = hdr(MMTYPE_SNIFFER);
        let mut wire = ind.encode(&hdr);
        let n = wire.len();
        wire[n - 1] ^= 0xFF; // corrupt SoF CRC
        assert!(SnifferInd::decode(&wire).is_err());
    }
}
