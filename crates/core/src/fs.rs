//! Crash-safe file helpers.
//!
//! One primitive, used everywhere a file must never be observed torn:
//! [`atomic_write`] writes to a temporary file in the target's
//! directory, syncs it, then renames it over the destination. A crash
//! (or SIGKILL) at any instant leaves either the old contents or the
//! new contents — never a prefix. The `plc-jobs` manifest and journal
//! compaction, and `plc-obs` registry snapshot export, all go through
//! this helper.

use std::io::Write;
use std::path::Path;

/// Atomically replace `path` with `contents`.
///
/// The bytes land in `<path>.<pid>.tmp` in the same directory (rename
/// is only atomic within one filesystem), are flushed and fsynced, and
/// the temp file is renamed over `path`. On any error the temp file is
/// removed and the destination is untouched.
///
/// ```
/// let dir = std::env::temp_dir();
/// let path = dir.join(format!("plc_core_fs_doc_{}.json", std::process::id()));
/// plc_core::fs::atomic_write(&path, "{\"ok\":true}").unwrap();
/// assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
/// std::fs::remove_file(&path).unwrap();
/// ```
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut name = path.file_name().map(|n| n.to_os_string()).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    name.push(format!(".{}.tmp", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&name),
        None => std::path::PathBuf::from(&name),
    };

    let write_all = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.flush()?;
        // Durability: the rename must not be reordered before the data.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    match write_all() {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("plc_core_fs_{tag}_{}", std::process::id()))
    }

    #[test]
    fn writes_fresh_file() {
        let p = temp_path("fresh");
        let _ = std::fs::remove_file(&p);
        atomic_write(&p, b"hello").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"hello");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn replaces_existing_file_whole() {
        let p = temp_path("replace");
        std::fs::write(&p, "old contents, longer than the new ones").unwrap();
        atomic_write(&p, "new").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "new");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let p = temp_path("clean");
        atomic_write(&p, "x").unwrap();
        let dir = p.parent().unwrap();
        let name = p.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with(&name) && n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write(std::path::Path::new(""), "x").is_err());
    }
}
