//! Crash-safe file helpers.
//!
//! One primitive, used everywhere a file must never be observed torn:
//! [`atomic_write`] writes to a temporary file in the target's
//! directory, syncs it, renames it over the destination, and fsyncs the
//! parent directory so the rename itself is durable. A crash (or
//! SIGKILL) at any instant leaves either the old contents or the new
//! contents — never a prefix. The `plc-jobs` manifest and journal
//! compaction, and `plc-obs` registry snapshot export, all go through
//! this helper.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global sequence number folded into every temp-file name, so
/// two threads writing the *same* destination concurrently never share
/// a temp file (the pid alone cannot tell them apart).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replace `path` with `contents`.
///
/// The bytes land in `<path>.<pid>.<seq>.tmp` in the same directory
/// (rename is only atomic within one filesystem; the per-process
/// sequence number keeps concurrent writers of the same path on
/// distinct temp files), are flushed and fsynced, and the temp file is
/// renamed over `path`. On Unix the parent directory is then fsynced as
/// well — without it the rename lives only in the directory's page
/// cache and a power loss after return could resurrect the old file,
/// the exact torn state this helper promises to rule out. On
/// non-Unix platforms the directory sync is a no-op: Windows has no
/// portable directory-handle fsync, and NTFS journals the rename in its
/// own metadata log. On any error the temp file is removed and the
/// destination is untouched.
///
/// ```
/// let dir = std::env::temp_dir();
/// let path = dir.join(format!("plc_core_fs_doc_{}.json", std::process::id()));
/// plc_core::fs::atomic_write(&path, "{\"ok\":true}").unwrap();
/// assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
/// std::fs::remove_file(&path).unwrap();
/// ```
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut name = path.file_name().map(|n| n.to_os_string()).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    name.push(format!(".{}.{}.tmp", std::process::id(), seq));
    let tmp = match dir {
        Some(d) => d.join(&name),
        None => std::path::PathBuf::from(&name),
    };

    let write_all = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.flush()?;
        // Durability: the rename must not be reordered before the data.
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    };
    match write_all() {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Fsync the directory holding `path` so a completed rename survives
/// power loss. Unix only; see [`atomic_write`] for the Windows story.
#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let dir = match path.parent().filter(|p| !p.as_os_str().is_empty()) {
        Some(d) => d.to_path_buf(),
        None => std::path::PathBuf::from("."),
    };
    std::fs::File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> std::io::Result<()> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("plc_core_fs_{tag}_{}", std::process::id()))
    }

    #[test]
    fn writes_fresh_file() {
        let p = temp_path("fresh");
        let _ = std::fs::remove_file(&p);
        atomic_write(&p, b"hello").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"hello");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn replaces_existing_file_whole() {
        let p = temp_path("replace");
        std::fs::write(&p, "old contents, longer than the new ones").unwrap();
        atomic_write(&p, "new").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "new");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let p = temp_path("clean");
        atomic_write(&p, "x").unwrap();
        let dir = p.parent().unwrap();
        let name = p.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with(&name) && n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write(std::path::Path::new(""), "x").is_err());
    }

    #[test]
    fn temp_names_are_unique_within_the_process() {
        // Two writes of the same destination must draw distinct sequence
        // numbers — the pid alone used to collide across threads.
        let a = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let b = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_same_path_writers_never_tear() {
        // The regression this pins: with pid-only temp names, two threads
        // writing the same destination share a temp file, and one can
        // rename the other's partially written bytes into place. With the
        // sequence suffix every observed read must be exactly one
        // writer's complete payload: 64 KiB of a single writer's byte.
        const LEN: usize = 64 * 1024;
        const WRITERS: u8 = 4;
        const ROUNDS: usize = 50;
        let p = temp_path("race");
        let _ = std::fs::remove_file(&p);
        std::thread::scope(|s| {
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let p = p.clone();
                    s.spawn(move || {
                        let payload = vec![b'a' + w; LEN];
                        for _ in 0..ROUNDS {
                            atomic_write(&p, &payload).unwrap();
                        }
                    })
                })
                .collect();
            let mut observed = 0usize;
            loop {
                let done = writers.iter().all(|h| h.is_finished());
                if let Ok(bytes) = std::fs::read(&p) {
                    let first = *bytes.first().expect("observed an empty (torn) file");
                    assert!(
                        bytes.len() == LEN && bytes.iter().all(|&b| b == first),
                        "torn read: {} bytes, first byte {:?}",
                        bytes.len(),
                        first as char
                    );
                    observed += 1;
                }
                if done {
                    break;
                }
            }
            assert!(observed > 0, "reader never observed the file");
        });
        let _ = std::fs::remove_file(&p);
    }
}
