//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag a controller sets once
//! and a worker polls from its hot loop. It is the cancellation
//! primitive of the whole workspace: the slotted engine polls one per
//! slot when installed (and compiles the check out entirely when not —
//! see `SlottedEngine::run` in `plc-sim`), `BatchRunner` consults one
//! between work items, and the `plc-jobs` watchdog arms one per sweep
//! point so a pathological configuration degrades to a typed timeout
//! instead of hanging the pool.
//!
//! Cancellation is **cooperative and permanent**: setting the flag
//! never interrupts anything by force, it only asks pollers to stop at
//! their next check, and a cancelled token stays cancelled forever
//! (arm a fresh token per attempt instead of reusing one).
//!
//! ```
//! use plc_core::CancelToken;
//!
//! let token = CancelToken::new();
//! let watcher = token.clone();
//! assert!(!watcher.is_cancelled());
//! token.cancel();
//! assert!(watcher.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-shot cancellation flag. Clones observe the same flag.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested. One relaxed-acquire atomic
    /// load — cheap enough to poll once per simulated slot.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Whether two tokens share the same underlying flag.
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(t.same_token(&c));
        c.cancel();
        assert!(t.is_cancelled());
        // Distinct tokens are independent.
        let other = CancelToken::new();
        assert!(!other.same_token(&t));
        assert!(!other.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let setter = t.clone();
        let h = std::thread::spawn(move || setter.cancel());
        h.join().unwrap();
        assert!(t.is_cancelled());
    }

    #[test]
    fn debug_shows_state() {
        let t = CancelToken::new();
        assert!(format!("{t:?}").contains("cancelled: false"));
        t.cancel();
        assert!(format!("{t:?}").contains("cancelled: true"));
    }
}
