//! HomePlug AV / IEEE 1901 MAC timing constants.
//!
//! The values the paper's reference simulator uses verbatim are exposed as
//! constants ([`SLOT`], [`DEFAULT_TS`], [`DEFAULT_TC`],
//! [`DEFAULT_FRAME_LENGTH`], [`DEFAULT_SIM_TIME`]). Around them we provide
//! the standard's contention timing structure (priority-resolution slots,
//! inter-frame spaces) used by the extended engine and the testbed
//! emulation, and a [`MacTiming`] bundle that derives success/collision
//! durations from their components so experiments can vary the payload
//! length coherently.

use crate::units::Microseconds;
use serde::{Deserialize, Serialize};

/// The 1901 contention time slot: 35.84 µs (the paper's simulator hardcodes
/// this value).
pub const SLOT: Microseconds = Microseconds(35.84);

/// Duration of one priority-resolution slot (PRS0 or PRS1) in 1901.
pub const PRS_SLOT: Microseconds = Microseconds(35.84);

/// Contention inter-frame space: the gap after a transmission before the
/// priority-resolution slots of the next contention round.
pub const CIFS: Microseconds = Microseconds(100.0);

/// Response inter-frame space: the gap between a data MPDU and its
/// (selective) acknowledgment.
pub const RIFS: Microseconds = Microseconds(140.0);

/// Duration of the frame-control + preamble portion of a PLC frame. The
/// preamble is modulated robustly so that even colliding frames can have
/// their delimiters decoded — the property the paper exploits to show that
/// collided frames are still acknowledged (with all PBs marked in error).
pub const PREAMBLE: Microseconds = Microseconds(110.48);

/// Duration of a selective-ACK (SACK) delimiter.
pub const SACK: Microseconds = Microseconds(110.48);

/// HomePlug AV beacon period: two mains cycles at 50 Hz (the paper's
/// European testbed) — 40 ms. The CCo transmits one beacon per period;
/// the rest of the period carries the CSMA allocation the paper studies.
pub const BEACON_PERIOD_50HZ: Microseconds = Microseconds(40_000.0);

/// Airtime of one beacon (preamble + frame control; beacons carry no
/// payload PBs).
pub const BEACON_AIRTIME: Microseconds = Microseconds(110.48);

/// Default duration of a successful transmission used throughout the paper:
/// `Ts = 2542.64 µs`.
pub const DEFAULT_TS: Microseconds = Microseconds(2542.64);

/// Default duration of a collision used throughout the paper:
/// `Tc = 2920.64 µs`.
pub const DEFAULT_TC: Microseconds = Microseconds(2920.64);

/// Default frame duration (payload airtime, excluding preamble, priority
/// slots, inter-frame spaces and ACK): `2050 µs`.
pub const DEFAULT_FRAME_LENGTH: Microseconds = Microseconds(2050.0);

/// Default simulation horizon used by the paper's example invocation:
/// `5 · 10^8 µs` (500 s of simulated time).
pub const DEFAULT_SIM_TIME: Microseconds = Microseconds(5.0e8);

/// Payload of one physical block in bytes (the 1901 PB is 512 bytes, of
/// which a header and checksum consume a small part; we model the full
/// 512-byte block as the unit the MAC reasons about, as the paper does).
pub const PB_SIZE: usize = 512;

/// Maximum number of MPDUs a station may send in one burst after winning
/// contention ("Up to four MPDUs may be supported in a burst").
pub const MAX_BURST: usize = 4;

/// The burst size the paper measured its INT6300 devices actually using in
/// the isolated experiments ("the stations in the isolated experiments use
/// bursts with 2 MPDUs").
pub const MEASURED_BURST: usize = 2;

/// The complete timing picture of one contention/transmission cycle.
///
/// The paper's reference simulator collapses everything into three numbers
/// (slot, Ts, Tc). `MacTiming` keeps those as the source of truth but also
/// exposes the structured breakdown so that the testbed emulation can place
/// SoF delimiters, ACK gaps and priority slots at realistic offsets inside a
/// transmission, and so that experiments varying the payload can recompute
/// `Ts`/`Tc` consistently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacTiming {
    /// Contention slot duration (σ).
    pub slot: Microseconds,
    /// Total airtime+overhead of a successful transmission, as seen by the
    /// contention process (everything between two backoff slots).
    pub ts: Microseconds,
    /// Total time consumed by a collision.
    pub tc: Microseconds,
    /// The payload airtime credited to the winner on success; normalized
    /// throughput is `successes · frame_length / total_time`.
    pub frame_length: Microseconds,
}

impl MacTiming {
    /// The paper's default timing: slot 35.84 µs, Ts 2542.64 µs,
    /// Tc 2920.64 µs, frame length 2050 µs.
    pub fn paper_default() -> Self {
        MacTiming {
            slot: SLOT,
            ts: DEFAULT_TS,
            tc: DEFAULT_TC,
            frame_length: DEFAULT_FRAME_LENGTH,
        }
    }

    /// Build a timing set from a payload duration, deriving `Ts` and `Tc`
    /// from the standard's overhead structure:
    ///
    /// * `Ts` = 2·PRS + preamble + payload + RIFS + SACK + CIFS
    /// * `Tc` = 2·PRS + preamble + payload + **ACK timeout** + CIFS, where
    ///   the ACK timeout is RIFS + SACK + an extra slot of detection margin
    ///   (collisions cost slightly more than successes, matching
    ///   `Tc > Ts` in the paper's defaults).
    pub fn from_payload(payload: Microseconds) -> Self {
        let common = PRS_SLOT * 2.0 + PREAMBLE + payload + CIFS;
        let ts = common + RIFS + SACK;
        let tc = common + RIFS + SACK + Microseconds(378.0);
        MacTiming {
            slot: SLOT,
            ts,
            tc,
            frame_length: payload,
        }
    }

    /// Validity check used by simulator constructors: all durations finite
    /// and positive, and the slot not longer than the transmissions.
    pub fn is_valid(&self) -> bool {
        self.slot.is_valid_duration()
            && self.ts.is_valid_duration()
            && self.tc.is_valid_duration()
            && self.frame_length.is_valid_duration()
            && self.slot.as_micros() > 0.0
            && self.ts.as_micros() > 0.0
            && self.tc.as_micros() > 0.0
    }

    /// The per-MPDU airtime when a burst of `n` MPDUs is sent in one won
    /// contention: the burst amortizes the contention overhead over `n`
    /// MPDUs, each separated by RIFS+SACK (1901 bursts are individually
    /// acknowledged when SACK is in use).
    pub fn burst_duration(&self, n: usize) -> Microseconds {
        assert!((1..=MAX_BURST).contains(&n), "burst size must be in 1..=4");
        // The first MPDU carries the full Ts overhead; each further MPDU
        // adds payload + RIFS + SACK.
        self.ts + (self.frame_length + RIFS + SACK) * ((n - 1) as u64)
    }
}

impl Default for MacTiming {
    fn default() -> Self {
        MacTiming::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_exact() {
        assert_eq!(SLOT.as_micros(), 35.84);
        assert_eq!(DEFAULT_TS.as_micros(), 2542.64);
        assert_eq!(DEFAULT_TC.as_micros(), 2920.64);
        assert_eq!(DEFAULT_FRAME_LENGTH.as_micros(), 2050.0);
        assert_eq!(DEFAULT_SIM_TIME.as_micros(), 5.0e8);
    }

    #[test]
    fn paper_default_bundle() {
        let t = MacTiming::paper_default();
        assert!(t.is_valid());
        assert_eq!(t.slot, SLOT);
        assert_eq!(t.ts, DEFAULT_TS);
        assert_eq!(t.tc, DEFAULT_TC);
        assert!(t.tc > t.ts, "collisions cost more than successes");
    }

    #[test]
    fn derived_timing_close_to_paper_defaults() {
        // With the paper's 2050 µs payload, the derived breakdown should
        // land near the paper's Ts/Tc (they were computed from the same
        // standard constants).
        let t = MacTiming::from_payload(DEFAULT_FRAME_LENGTH);
        assert!(
            (t.ts.as_micros() - DEFAULT_TS.as_micros()).abs() < 60.0,
            "Ts = {}",
            t.ts
        );
        assert!(
            (t.tc.as_micros() - DEFAULT_TC.as_micros()).abs() < 60.0,
            "Tc = {}",
            t.tc
        );
        assert!(t.tc > t.ts);
    }

    #[test]
    fn burst_amortizes_overhead() {
        let t = MacTiming::paper_default();
        let one = t.burst_duration(1);
        let two = t.burst_duration(2);
        assert_eq!(one, t.ts);
        assert!(two > one);
        // Per-MPDU airtime must shrink with burst size.
        assert!(two.as_micros() / 2.0 < one.as_micros());
        let four = t.burst_duration(MAX_BURST);
        assert!(four.as_micros() / 4.0 < two.as_micros() / 2.0);
    }

    #[test]
    #[should_panic(expected = "burst size")]
    fn burst_of_zero_panics() {
        MacTiming::paper_default().burst_duration(0);
    }

    #[test]
    #[should_panic(expected = "burst size")]
    fn burst_of_five_panics() {
        MacTiming::paper_default().burst_duration(5);
    }

    #[test]
    fn invalid_timing_detected() {
        let mut t = MacTiming::paper_default();
        t.slot = Microseconds(0.0);
        assert!(!t.is_valid());
        let mut t2 = MacTiming::paper_default();
        t2.ts = Microseconds(-1.0);
        assert!(!t2.is_valid());
        let mut t3 = MacTiming::paper_default();
        t3.tc = Microseconds(f64::NAN);
        assert!(!t3.is_valid());
    }

    #[test]
    fn pb_and_burst_constants() {
        assert_eq!(PB_SIZE, 512);
        assert_eq!(MAX_BURST, 4);
        assert_eq!(MEASURED_BURST, 2);
    }
}
