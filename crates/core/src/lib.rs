//! # plc-core — foundational types for the IEEE 1901 / HomePlug AV MAC suite
//!
//! This crate holds everything the rest of the workspace agrees on:
//!
//! * [`Priority`] — the four 1901 channel-access priority classes (CA0–CA3)
//!   and the two-slot priority-resolution signalling they imply.
//! * [`CsmaConfig`] — the CSMA/CA parameter tables: per-backoff-stage
//!   contention windows `CW_i` and initial deferral-counter values `d_i`
//!   (Table 1 of the paper), plus presets for the standard CA0/CA1 and
//!   CA2/CA3 tables and for 802.11-style binary-exponential configs.
//! * [`timing`] — HomePlug AV MAC timing constants (the 35.84 µs slot,
//!   priority-resolution slots, inter-frame spaces, and the paper's default
//!   `Ts`/`Tc`/frame-length values) expressed in [`Microseconds`].
//! * [`MacAddr`] / [`Tei`] — addressing for emulated devices.
//! * [`frame`] — the HomePlug AV framing model: 512-byte physical blocks
//!   (PBs), MPDUs, bursts of up to four MPDUs, and the start-of-frame (SoF)
//!   delimiter fields that the paper's sniffer methodology reads
//!   (LinkID priority, MPDUCnt, source TEI).
//! * [`mme`] — management-message (MME) encoding: the header with its
//!   `MMType` field and the two vendor-specific messages the paper's tools
//!   use — `0xA030` (ampstat statistics) and `0xA034` (sniffer mode) — with
//!   the exact reply byte offsets the report quotes (bytes 25–32 acked,
//!   33–40 collided).
//!
//! Everything above is plain data with byte-level encode/parse where the
//! paper's methodology depends on wire formats — no I/O, no randomness.
//! Two workspace-wide infrastructure primitives also live here because
//! every layer shares them: [`cancel`] (the cooperative [`CancelToken`]
//! the engine hot loop and job watchdogs poll) and [`fs`]
//! ([`fs::atomic_write`], the temp-file + rename helper behind every
//! crash-safe artifact: job manifests, journal compaction, registry
//! snapshot export).
//!
//! ## Design
//!
//! Following the smoltcp philosophy: simple owned types, no lifetimes in
//! public APIs, no `unsafe`, exhaustive documentation, and errors that tell
//! you exactly which field was out of range.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cancel;
pub mod config;
pub mod error;
pub mod frame;
pub mod fs;
pub mod mme;
pub mod priority;
pub mod timing;
pub mod units;

pub use addr::{MacAddr, Tei};
pub use cancel::CancelToken;
pub use config::{CsmaConfig, StageParams};
pub use error::{Error, Result};
pub use priority::Priority;
pub use units::Microseconds;
