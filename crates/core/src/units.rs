//! Time units used by the MAC simulator.
//!
//! All MAC timing in IEEE 1901 is specified in microseconds, and the paper's
//! reference simulator advances a floating-point clock in microseconds (the
//! slot is 35.84 µs, not an integer). We keep a thin `f64` newtype so that
//! durations cannot be silently mixed with slot counts or byte counts, while
//! staying trivially cheap in the hot simulation loop.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A duration (or a point in simulated time) in microseconds.
///
/// Backed by `f64` because the 1901 slot time (35.84 µs) and the paper's
/// default transmission durations (2542.64 µs, 2920.64 µs) are not integer
/// microsecond counts. Comparisons use the exact IEEE semantics of `f64`;
/// the simulator never relies on equality of accumulated times, only on
/// ordering against the simulation horizon.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Microseconds(pub f64);

impl Microseconds {
    /// Zero duration.
    pub const ZERO: Microseconds = Microseconds(0.0);

    /// Construct from a raw `f64` microsecond count.
    pub const fn new(us: f64) -> Self {
        Microseconds(us)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Microseconds(ms * 1_000.0)
    }

    /// Construct from seconds.
    pub fn from_secs(s: f64) -> Self {
        Microseconds(s * 1_000_000.0)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> f64 {
        self.0
    }

    /// This duration expressed in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1_000.0
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// True if the duration is finite and non-negative — the only durations
    /// the simulator accepts as inputs.
    pub fn is_valid_duration(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Saturating subtraction: returns zero instead of a negative duration.
    pub fn saturating_sub(self, rhs: Microseconds) -> Microseconds {
        Microseconds((self.0 - rhs.0).max(0.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: Microseconds) -> Microseconds {
        Microseconds(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Microseconds) -> Microseconds {
        Microseconds(self.0.min(other.0))
    }
}

impl Add for Microseconds {
    type Output = Microseconds;
    fn add(self, rhs: Microseconds) -> Microseconds {
        Microseconds(self.0 + rhs.0)
    }
}

impl AddAssign for Microseconds {
    fn add_assign(&mut self, rhs: Microseconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Microseconds {
    type Output = Microseconds;
    fn sub(self, rhs: Microseconds) -> Microseconds {
        Microseconds(self.0 - rhs.0)
    }
}

impl SubAssign for Microseconds {
    fn sub_assign(&mut self, rhs: Microseconds) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Microseconds {
    type Output = Microseconds;
    fn mul(self, rhs: f64) -> Microseconds {
        Microseconds(self.0 * rhs)
    }
}

impl Mul<u64> for Microseconds {
    type Output = Microseconds;
    fn mul(self, rhs: u64) -> Microseconds {
        Microseconds(self.0 * rhs as f64)
    }
}

impl Div<Microseconds> for Microseconds {
    /// Dividing two durations yields a dimensionless ratio (e.g. normalized
    /// throughput = airtime carrying payload / total time).
    type Output = f64;
    fn div(self, rhs: Microseconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for Microseconds {
    type Output = Microseconds;
    fn div(self, rhs: f64) -> Microseconds {
        Microseconds(self.0 / rhs)
    }
}

impl Sum for Microseconds {
    fn sum<I: Iterator<Item = Microseconds>>(iter: I) -> Microseconds {
        Microseconds(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Microseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000.0 {
            write!(f, "{:.3} s", self.as_secs())
        } else if self.0 >= 1_000.0 {
            write!(f, "{:.3} ms", self.as_millis())
        } else {
            write!(f, "{:.2} µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let d = Microseconds::from_secs(2.5);
        assert_eq!(d.as_micros(), 2_500_000.0);
        assert_eq!(d.as_millis(), 2_500.0);
        assert_eq!(d.as_secs(), 2.5);
        assert_eq!(Microseconds::from_millis(1.5).as_micros(), 1_500.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Microseconds(100.0);
        let b = Microseconds(35.84);
        assert_eq!((a + b).0, 135.84);
        assert!(((a - b).0 - 64.16).abs() < 1e-12);
        assert_eq!((b * 2.0).0, 71.68);
        assert_eq!((b * 2u64).0, 71.68);
        assert_eq!(a / Microseconds(50.0), 2.0);
        assert_eq!((a / 4.0).0, 25.0);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = Microseconds(10.0);
        let b = Microseconds(20.0);
        assert_eq!(a.saturating_sub(b), Microseconds::ZERO);
        assert_eq!(b.saturating_sub(a).0, 10.0);
    }

    #[test]
    fn validity_check() {
        assert!(Microseconds(0.0).is_valid_duration());
        assert!(Microseconds(35.84).is_valid_duration());
        assert!(!Microseconds(-1.0).is_valid_duration());
        assert!(!Microseconds(f64::NAN).is_valid_duration());
        assert!(!Microseconds(f64::INFINITY).is_valid_duration());
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(Microseconds(35.84).to_string(), "35.84 µs");
        assert_eq!(Microseconds(2542.64).to_string(), "2.543 ms");
        assert_eq!(Microseconds::from_secs(240.0).to_string(), "240.000 s");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Microseconds = (0..4).map(|_| Microseconds(35.84)).sum();
        assert!((total.0 - 143.36).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        let a = Microseconds(1.0);
        let b = Microseconds(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn assign_ops() {
        let mut t = Microseconds::ZERO;
        t += Microseconds(35.84);
        t += Microseconds(35.84);
        t -= Microseconds(35.84);
        assert!((t.0 - 35.84).abs() < 1e-12);
    }
}
