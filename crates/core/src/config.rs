//! CSMA/CA parameter tables.
//!
//! A [`CsmaConfig`] is exactly the pair of vectors the paper's simulator
//! takes as input (Table 3): `cw`, the contention window per backoff stage,
//! and `dc`, the initial deferral-counter value per backoff stage. The
//! standard IEEE 1901 tables (Table 1) are provided as presets, as are
//! 802.11-style binary-exponential tables (obtained by disabling the
//! deferral counter, `d_i = ∞`) used as the comparison baseline.

use crate::error::{Error, Result};
use crate::priority::Priority;
use serde::{Deserialize, Serialize};

/// Sentinel for "deferral counter disabled at this stage".
///
/// A stage with `dc = DC_DISABLED` never jumps to the next stage on busy
/// slots — it behaves like 802.11, where only a failed transmission attempt
/// advances the backoff stage. `u32::MAX` busy slots can never elapse within
/// one backoff (contention windows are ≤ 2^16), so the sentinel is exact.
pub const DC_DISABLED: u32 = u32::MAX;

/// Parameters of a single backoff stage: the contention window `CW_i` and
/// the initial deferral counter `d_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageParams {
    /// Contention window: the backoff counter is drawn uniformly from
    /// `{0, …, cw − 1}`.
    pub cw: u32,
    /// Initial deferral counter value `d_i`: the station tolerates `d_i`
    /// busy slots at this stage; sensing the medium busy when DC is already
    /// 0 triggers a jump to the next stage.
    pub dc: u32,
}

/// A full CSMA/CA configuration: one [`StageParams`] per backoff stage.
///
/// # Examples
///
/// ```
/// use plc_core::config::CsmaConfig;
///
/// // The paper's default CA1 table (Table 1, left column).
/// let ca1 = CsmaConfig::ieee1901_ca01();
/// assert_eq!(ca1.cw_vector(), vec![8, 16, 32, 64]);
/// assert_eq!(ca1.dc_vector(), vec![0, 1, 3, 15]);
///
/// // A custom table in the simulator-input shape of Table 3.
/// let custom = CsmaConfig::from_vectors(&[16, 64], &[1, 7]).unwrap();
/// assert_eq!(custom.num_stages(), 2);
/// assert_eq!(custom.stage(5).cw, 64, "stage index saturates");
/// ```
///
/// Invariants (checked by [`CsmaConfig::validate`], enforced by all
/// constructors):
///
/// * at least one stage;
/// * every `cw ≥ 1` (a zero window would make the uniform draw empty);
/// * `cw` fits in 16 bits (1901 windows are small; this also keeps the
///   analytical model's binomial sums exact in `f64`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsmaConfig {
    stages: Vec<StageParams>,
}

impl CsmaConfig {
    /// Build a configuration from per-stage parameters.
    pub fn new(stages: Vec<StageParams>) -> Result<Self> {
        let cfg = CsmaConfig { stages };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Build from parallel `cw` / `dc` vectors, the shape the paper's
    /// simulator takes (`cw = [8 16 32 64]`, `dc = [0 1 3 15]`).
    pub fn from_vectors(cw: &[u32], dc: &[u32]) -> Result<Self> {
        if cw.len() != dc.len() {
            return Err(Error::invalid_config(format!(
                "cw and dc must have the same length (got {} and {})",
                cw.len(),
                dc.len()
            )));
        }
        Self::new(
            cw.iter()
                .zip(dc.iter())
                .map(|(&cw, &dc)| StageParams { cw, dc })
                .collect(),
        )
    }

    /// The standard 1901 table for best-effort priorities CA0/CA1
    /// (Table 1, left column): `cw = [8, 16, 32, 64]`, `dc = [0, 1, 3, 15]`.
    pub fn ieee1901_ca01() -> Self {
        CsmaConfig::from_vectors(&[8, 16, 32, 64], &[0, 1, 3, 15]).expect("standard table is valid")
    }

    /// The standard 1901 table for delay-sensitive priorities CA2/CA3
    /// (Table 1, right column): `cw = [8, 16, 16, 32]`, `dc = [0, 1, 3, 15]`.
    pub fn ieee1901_ca23() -> Self {
        CsmaConfig::from_vectors(&[8, 16, 16, 32], &[0, 1, 3, 15]).expect("standard table is valid")
    }

    /// The standard table for a given priority class (selects the Table 1
    /// column).
    pub fn ieee1901_for(priority: Priority) -> Self {
        if priority.is_delay_sensitive() {
            Self::ieee1901_ca23()
        } else {
            Self::ieee1901_ca01()
        }
    }

    /// An 802.11-style binary-exponential table: `m` stages with
    /// `cw_i = cw_min · 2^i` and the deferral counter disabled everywhere.
    ///
    /// With `cw_min = 16, m = 6` this is classic DCF-like
    /// (16, 32, …, 512). The paper's comparison point uses the same minimum
    /// window as 1901 to isolate the effect of the deferral counter.
    pub fn dcf_like(cw_min: u32, stages: usize) -> Result<Self> {
        if stages == 0 {
            return Err(Error::invalid_config("need at least one stage"));
        }
        let mut v = Vec::with_capacity(stages);
        for i in 0..stages {
            let cw = cw_min
                .checked_shl(i as u32)
                .ok_or_else(|| Error::invalid_config(format!("cw overflow at stage {i}")))?;
            v.push(StageParams {
                cw,
                dc: DC_DISABLED,
            });
        }
        CsmaConfig::new(v)
    }

    /// A single-stage constant-window configuration (useful for boosting
    /// experiments and for degenerate analytical cases).
    pub fn constant_window(cw: u32) -> Result<Self> {
        CsmaConfig::new(vec![StageParams {
            cw,
            dc: DC_DISABLED,
        }])
    }

    /// Number of backoff stages `m`.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Parameters of stage `i`, where `i` beyond the last stage saturates to
    /// the last stage — matching the standard's "re-enters the last backoff
    /// stage" rule (BPC ≥ 3 keeps using stage 3 in Table 1).
    pub fn stage(&self, i: usize) -> StageParams {
        let idx = i.min(self.stages.len() - 1);
        self.stages[idx]
    }

    /// The stage index used for a given backoff-procedure-counter value
    /// (saturates at the last stage).
    pub fn stage_for_bpc(&self, bpc: u32) -> usize {
        (bpc as usize).min(self.stages.len() - 1)
    }

    /// All stages, lowest first.
    pub fn stages(&self) -> &[StageParams] {
        &self.stages
    }

    /// The `cw` vector (Table 3 shape).
    pub fn cw_vector(&self) -> Vec<u32> {
        self.stages.iter().map(|s| s.cw).collect()
    }

    /// The `dc` vector (Table 3 shape).
    pub fn dc_vector(&self) -> Vec<u32> {
        self.stages.iter().map(|s| s.dc).collect()
    }

    /// Minimum contention window (stage 0).
    pub fn cw_min(&self) -> u32 {
        self.stages[0].cw
    }

    /// Maximum contention window (largest over stages; the standard tables
    /// are monotone but custom boosted tables need not be).
    pub fn cw_max(&self) -> u32 {
        self.stages.iter().map(|s| s.cw).max().unwrap_or(0)
    }

    /// Whether any stage uses the deferral counter.
    ///
    /// False for DCF-like tables; true for all 1901 tables (even stage 0,
    /// where `d_0 = 0` means "one busy slot is enough to move on").
    pub fn uses_deferral(&self) -> bool {
        self.stages.iter().any(|s| s.dc != DC_DISABLED)
    }

    /// Check the structural invariants. All constructors call this; it is
    /// public so that deserialized configs can be re-checked.
    pub fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(Error::invalid_config("need at least one backoff stage"));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.cw == 0 {
                return Err(Error::invalid_config(format!(
                    "stage {i}: contention window must be ≥ 1"
                )));
            }
            if s.cw > 1 << 16 {
                return Err(Error::invalid_config(format!(
                    "stage {i}: contention window {} exceeds 2^16",
                    s.cw
                )));
            }
        }
        Ok(())
    }
}

impl Default for CsmaConfig {
    /// The paper's default configuration: the CA1 best-effort table.
    fn default() -> Self {
        CsmaConfig::ieee1901_ca01()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ca01_matches_paper() {
        let c = CsmaConfig::ieee1901_ca01();
        assert_eq!(c.cw_vector(), vec![8, 16, 32, 64]);
        assert_eq!(c.dc_vector(), vec![0, 1, 3, 15]);
        assert_eq!(c.num_stages(), 4);
        assert_eq!(c.cw_min(), 8);
        assert_eq!(c.cw_max(), 64);
        assert!(c.uses_deferral());
    }

    #[test]
    fn table1_ca23_matches_paper() {
        let c = CsmaConfig::ieee1901_ca23();
        assert_eq!(c.cw_vector(), vec![8, 16, 16, 32]);
        assert_eq!(c.dc_vector(), vec![0, 1, 3, 15]);
    }

    #[test]
    fn priority_selects_column() {
        assert_eq!(
            CsmaConfig::ieee1901_for(Priority::CA0),
            CsmaConfig::ieee1901_ca01()
        );
        assert_eq!(
            CsmaConfig::ieee1901_for(Priority::CA1),
            CsmaConfig::ieee1901_ca01()
        );
        assert_eq!(
            CsmaConfig::ieee1901_for(Priority::CA2),
            CsmaConfig::ieee1901_ca23()
        );
        assert_eq!(
            CsmaConfig::ieee1901_for(Priority::CA3),
            CsmaConfig::ieee1901_ca23()
        );
    }

    #[test]
    fn stage_saturates_at_last() {
        let c = CsmaConfig::ieee1901_ca01();
        assert_eq!(c.stage(0).cw, 8);
        assert_eq!(c.stage(3).cw, 64);
        assert_eq!(c.stage(7).cw, 64, "BPC ≥ 3 keeps stage 3");
        assert_eq!(c.stage_for_bpc(0), 0);
        assert_eq!(c.stage_for_bpc(3), 3);
        assert_eq!(c.stage_for_bpc(100), 3);
    }

    #[test]
    fn dcf_like_doubles_windows() {
        let c = CsmaConfig::dcf_like(16, 5).unwrap();
        assert_eq!(c.cw_vector(), vec![16, 32, 64, 128, 256]);
        assert!(c.dc_vector().iter().all(|&d| d == DC_DISABLED));
        assert!(!c.uses_deferral());
    }

    #[test]
    fn dcf_like_rejects_overflow_and_empty() {
        assert!(CsmaConfig::dcf_like(16, 0).is_err());
        assert!(CsmaConfig::dcf_like(1 << 30, 4).is_err());
    }

    #[test]
    fn mismatched_vectors_rejected() {
        assert!(CsmaConfig::from_vectors(&[8, 16], &[0]).is_err());
    }

    #[test]
    fn zero_window_rejected() {
        assert!(CsmaConfig::from_vectors(&[8, 0], &[0, 1]).is_err());
    }

    #[test]
    fn huge_window_rejected() {
        assert!(CsmaConfig::from_vectors(&[1 << 17], &[0]).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(CsmaConfig::new(vec![]).is_err());
    }

    #[test]
    fn default_is_ca01() {
        assert_eq!(CsmaConfig::default(), CsmaConfig::ieee1901_ca01());
    }

    #[test]
    fn constant_window_single_stage() {
        let c = CsmaConfig::constant_window(32).unwrap();
        assert_eq!(c.num_stages(), 1);
        assert_eq!(c.stage(5).cw, 32);
        assert!(!c.uses_deferral());
    }

    #[test]
    fn serde_round_trip_via_validate() {
        // serde is derived; make sure a cloned/reconstructed config still
        // validates and compares equal.
        let c = CsmaConfig::ieee1901_ca01();
        let c2 = CsmaConfig::new(c.stages().to_vec()).unwrap();
        assert_eq!(c, c2);
    }
}
