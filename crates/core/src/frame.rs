//! The HomePlug AV framing model: physical blocks, MPDUs, bursts, and the
//! start-of-frame (SoF) delimiter fields the paper's sniffer methodology
//! reads.
//!
//! IEEE 1901 aggregates Ethernet frames into 512-byte **physical blocks**
//! (PBs); the PBs are packed into a **MPDU** (the PLC frame); and a station
//! that wins contention may transmit a **burst** of up to four MPDUs.
//! Each MPDU begins with a robustly-modulated delimiter whose fields remain
//! decodable even when the payload collides — this is why the paper's
//! testbed sees collided frames *acknowledged* (with every PB flagged in
//! error) and why `ΣAᵢ` includes collisions.
//!
//! The paper's `faifa`-based methodology reads exactly three SoF fields:
//!
//! * **LinkID** — carries the channel-access priority, used to separate CA1
//!   data traffic from CA2/CA3 management traffic;
//! * **MPDUCnt** — the number of MPDUs *remaining* in the current burst
//!   (0 marks the last MPDU, which is how burst boundaries are detected);
//! * **source TEI** — used to build per-source fairness traces.
//!
//! [`SofDelimiter`] models these (plus destination and length bookkeeping)
//! with a fixed 16-byte wire encoding. The encoding is our emulation format
//! — the real 1901 frame control is a 128-bit structure whose exact layout
//! the tools abstract away — but every field the methodology depends on is
//! present and round-trips bit-exactly.

use crate::addr::Tei;
use crate::error::{Error, Result};
use crate::priority::Priority;
use crate::timing::{MAX_BURST, PB_SIZE};
use serde::{Deserialize, Serialize};

/// Wire size of an encoded [`SofDelimiter`].
pub const SOF_WIRE_LEN: usize = 16;

/// Delimiter types that can open a PLC transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DelimiterType {
    /// Beacon (from the CCo; present in real captures, modelled for
    /// completeness of the sniffer).
    Beacon,
    /// Start-of-frame: a data or management MPDU follows.
    Sof,
    /// Selective acknowledgment.
    Sack,
    /// Request-to-send / clear-to-send (unused in the paper's single
    /// contention domain, present for completeness).
    RtsCts,
}

impl DelimiterType {
    /// Wire encoding of the delimiter type.
    pub fn to_byte(self) -> u8 {
        match self {
            DelimiterType::Beacon => 0,
            DelimiterType::Sof => 1,
            DelimiterType::Sack => 2,
            DelimiterType::RtsCts => 3,
        }
    }

    /// Parse the wire encoding.
    pub fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(DelimiterType::Beacon),
            1 => Ok(DelimiterType::Sof),
            2 => Ok(DelimiterType::Sack),
            3 => Ok(DelimiterType::RtsCts),
            other => Err(Error::UnknownDelimiter(other)),
        }
    }
}

/// A 512-byte physical block. The MAC only cares about the count and the
/// per-PB error flags (selective acknowledgment works at PB granularity),
/// so we carry a length-checked payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalBlock {
    /// Block payload; always exactly [`PB_SIZE`] bytes.
    payload: Vec<u8>,
}

impl PhysicalBlock {
    /// A zero-filled block (MAC-layer experiments never look inside).
    pub fn zeroed() -> Self {
        PhysicalBlock {
            payload: vec![0u8; PB_SIZE],
        }
    }

    /// Build a block from up to 512 bytes of data, zero-padding the rest.
    /// Returns an error if `data` exceeds the block size.
    pub fn from_data(data: &[u8]) -> Result<Self> {
        if data.len() > PB_SIZE {
            return Err(Error::FieldRange {
                field: "PB payload",
                value: data.len() as u64,
                max: PB_SIZE as u64,
            });
        }
        let mut payload = vec![0u8; PB_SIZE];
        payload[..data.len()].copy_from_slice(data);
        Ok(PhysicalBlock { payload })
    }

    /// The 512-byte payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

/// How many physical blocks are needed to carry `bytes` of application data.
pub fn pbs_for_bytes(bytes: usize) -> usize {
    bytes.div_ceil(PB_SIZE).max(1)
}

/// The kind of payload an MPDU carries. The testbed distinguishes the two
/// through the LinkID priority, but the emulated firmware also tracks the
/// kind directly so tests can assert the LinkID-based classification agrees
/// with ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    /// Application (UDP) data.
    Data,
    /// A management message.
    Mgmt,
}

/// The start-of-frame delimiter fields of one MPDU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SofDelimiter {
    /// Source station TEI.
    pub src: Tei,
    /// Destination station TEI.
    pub dst: Tei,
    /// Channel-access priority carried in the LinkID field.
    pub priority: Priority,
    /// Number of MPDUs *remaining* in the burst after this one; 0 means this
    /// is the last MPDU of the burst.
    pub mpdu_cnt: u8,
    /// Number of physical blocks in this MPDU.
    pub num_pbs: u16,
    /// Frame airtime in units of 1.28 µs (the 1901 frame-length field
    /// granularity), capped at `u16::MAX`.
    pub fl_units: u16,
}

impl SofDelimiter {
    /// Encode to the fixed 16-byte wire format.
    ///
    /// Layout (offsets in bytes):
    /// `0` type (=SoF), `1` src TEI, `2` dst TEI, `3` LinkID (priority in
    /// low 2 bits), `4` MPDUCnt, `5..7` num PBs (LE), `7..9` frame length
    /// units (LE), `9..12` reserved, `12..16` CRC-32 over bytes 0..12.
    pub fn encode(&self) -> [u8; SOF_WIRE_LEN] {
        let mut b = [0u8; SOF_WIRE_LEN];
        b[0] = DelimiterType::Sof.to_byte();
        b[1] = self.src.0;
        b[2] = self.dst.0;
        b[3] = self.priority.to_bits();
        b[4] = self.mpdu_cnt;
        b[5..7].copy_from_slice(&self.num_pbs.to_le_bytes());
        b[7..9].copy_from_slice(&self.fl_units.to_le_bytes());
        let crc = crc32(&b[..12]);
        b[12..16].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parse the wire format, checking type, field ranges and CRC.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < SOF_WIRE_LEN {
            return Err(Error::Truncated {
                what: "SoF delimiter",
                needed: SOF_WIRE_LEN,
                got: buf.len(),
            });
        }
        let ty = DelimiterType::from_byte(buf[0])?;
        if ty != DelimiterType::Sof {
            return Err(Error::UnknownDelimiter(buf[0]));
        }
        let carried = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
        let computed = crc32(&buf[..12]);
        if carried != computed {
            return Err(Error::BadChecksum {
                expected: carried,
                computed,
            });
        }
        let priority = Priority::from_bits(buf[3] & 0b11).expect("2-bit value");
        let mpdu_cnt = buf[4];
        if usize::from(mpdu_cnt) >= MAX_BURST {
            return Err(Error::FieldRange {
                field: "MPDUCnt",
                value: mpdu_cnt as u64,
                max: (MAX_BURST - 1) as u64,
            });
        }
        Ok(SofDelimiter {
            src: Tei(buf[1]),
            dst: Tei(buf[2]),
            priority,
            mpdu_cnt,
            num_pbs: u16::from_le_bytes([buf[5], buf[6]]),
            fl_units: u16::from_le_bytes([buf[7], buf[8]]),
        })
    }

    /// True when this MPDU is the last of its burst ("When this number is
    /// equal to 0, the corresponding MPDU is the last one in the burst").
    pub fn is_last_of_burst(&self) -> bool {
        self.mpdu_cnt == 0
    }
}

/// One MAC protocol data unit: a SoF delimiter plus its physical blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mpdu {
    /// The delimiter (robustly modulated; survives collisions).
    pub sof: SofDelimiter,
    /// What the payload is (ground truth for tests; the wire only carries
    /// the LinkID priority).
    pub kind: PayloadKind,
    /// The physical blocks. Their count always equals `sof.num_pbs`.
    pbs: Vec<PhysicalBlock>,
}

impl Mpdu {
    /// Build an MPDU with `num_pbs` zero-filled physical blocks.
    pub fn new(sof: SofDelimiter, kind: PayloadKind) -> Self {
        let pbs = (0..sof.num_pbs).map(|_| PhysicalBlock::zeroed()).collect();
        Mpdu { sof, kind, pbs }
    }

    /// The physical blocks.
    pub fn pbs(&self) -> &[PhysicalBlock] {
        &self.pbs
    }

    /// Total payload bytes carried (PB count × 512).
    pub fn payload_bytes(&self) -> usize {
        self.pbs.len() * PB_SIZE
    }
}

/// A selective acknowledgment: one receive-status flag per PB of the
/// acknowledged MPDU.
///
/// The key behaviour the paper verified experimentally: **a collided MPDU
/// whose delimiter was decodable is still acknowledged**, with every PB
/// flagged as errored. The transmitter counts such an outcome as a
/// *collision* while the destination's ACK counter still ticks — which is
/// why the measured `ΣAᵢ` grows with N.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectiveAck {
    /// Destination of the ACK (the original transmitter).
    pub to: Tei,
    /// Per-PB status; `true` = received correctly.
    pub pb_ok: Vec<bool>,
}

impl SelectiveAck {
    /// ACK for a cleanly received MPDU: all PBs good.
    pub fn all_good(to: Tei, num_pbs: u16) -> Self {
        SelectiveAck {
            to,
            pb_ok: vec![true; num_pbs as usize],
        }
    }

    /// ACK for a collided MPDU whose delimiter was decoded: every PB is
    /// flagged errored.
    pub fn all_errored(to: Tei, num_pbs: u16) -> Self {
        SelectiveAck {
            to,
            pb_ok: vec![false; num_pbs as usize],
        }
    }

    /// True when every PB was received ("the transmission succeeded").
    pub fn is_success(&self) -> bool {
        !self.pb_ok.is_empty() && self.pb_ok.iter().all(|&ok| ok)
    }

    /// True when the ACK indicates "all physical blocks received with
    /// errors, which yields a collision" (the paper's wording).
    pub fn indicates_collision(&self) -> bool {
        !self.pb_ok.is_empty() && self.pb_ok.iter().all(|&ok| !ok)
    }

    /// Number of PBs that must be retransmitted.
    pub fn num_failed(&self) -> usize {
        self.pb_ok.iter().filter(|&&ok| !ok).count()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) used for delimiter integrity.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sof() -> SofDelimiter {
        SofDelimiter {
            src: Tei(3),
            dst: Tei(1),
            priority: Priority::CA1,
            mpdu_cnt: 1,
            num_pbs: 4,
            fl_units: 1602, // ≈ 2050 µs / 1.28 µs
        }
    }

    #[test]
    fn sof_round_trips() {
        let sof = sample_sof();
        let wire = sof.encode();
        assert_eq!(wire.len(), SOF_WIRE_LEN);
        let parsed = SofDelimiter::decode(&wire).unwrap();
        assert_eq!(parsed, sof);
    }

    #[test]
    fn sof_burst_boundary() {
        let mut sof = sample_sof();
        sof.mpdu_cnt = 0;
        assert!(sof.is_last_of_burst());
        sof.mpdu_cnt = 2;
        assert!(!sof.is_last_of_burst());
    }

    #[test]
    fn sof_rejects_truncation() {
        let wire = sample_sof().encode();
        for len in 0..SOF_WIRE_LEN {
            assert!(matches!(
                SofDelimiter::decode(&wire[..len]),
                Err(Error::Truncated { .. })
            ));
        }
    }

    #[test]
    fn sof_rejects_corruption() {
        let mut wire = sample_sof().encode();
        wire[1] ^= 0xFF; // flip the src TEI
        assert!(matches!(
            SofDelimiter::decode(&wire),
            Err(Error::BadChecksum { .. })
        ));
    }

    #[test]
    fn sof_rejects_wrong_type() {
        let mut wire = sample_sof().encode();
        wire[0] = DelimiterType::Sack.to_byte();
        // Recompute CRC so only the type is wrong.
        let crc = crc32(&wire[..12]);
        wire[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(SofDelimiter::decode(&wire).is_err());
    }

    #[test]
    fn sof_rejects_oversized_mpducnt() {
        let mut wire = sample_sof().encode();
        wire[4] = 4; // MAX_BURST
        let crc = crc32(&wire[..12]);
        wire[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            SofDelimiter::decode(&wire),
            Err(Error::FieldRange {
                field: "MPDUCnt",
                ..
            })
        ));
    }

    #[test]
    fn delimiter_type_round_trip() {
        for ty in [
            DelimiterType::Beacon,
            DelimiterType::Sof,
            DelimiterType::Sack,
            DelimiterType::RtsCts,
        ] {
            assert_eq!(DelimiterType::from_byte(ty.to_byte()).unwrap(), ty);
        }
        assert!(DelimiterType::from_byte(9).is_err());
    }

    #[test]
    fn pb_sizing() {
        assert_eq!(pbs_for_bytes(0), 1);
        assert_eq!(pbs_for_bytes(1), 1);
        assert_eq!(pbs_for_bytes(512), 1);
        assert_eq!(pbs_for_bytes(513), 2);
        assert_eq!(pbs_for_bytes(1500), 3); // one Ethernet MTU
        assert_eq!(pbs_for_bytes(2048), 4);
    }

    #[test]
    fn pb_construction() {
        let pb = PhysicalBlock::from_data(&[1, 2, 3]).unwrap();
        assert_eq!(pb.payload().len(), PB_SIZE);
        assert_eq!(&pb.payload()[..3], &[1, 2, 3]);
        assert_eq!(pb.payload()[3], 0);
        assert!(PhysicalBlock::from_data(&vec![0u8; PB_SIZE + 1]).is_err());
        assert_eq!(PhysicalBlock::zeroed().payload().len(), PB_SIZE);
    }

    #[test]
    fn mpdu_carries_declared_pbs() {
        let m = Mpdu::new(sample_sof(), PayloadKind::Data);
        assert_eq!(m.pbs().len(), 4);
        assert_eq!(m.payload_bytes(), 4 * PB_SIZE);
    }

    #[test]
    fn sack_success_and_collision() {
        let good = SelectiveAck::all_good(Tei(3), 4);
        assert!(good.is_success());
        assert!(!good.indicates_collision());
        assert_eq!(good.num_failed(), 0);

        let bad = SelectiveAck::all_errored(Tei(3), 4);
        assert!(!bad.is_success());
        assert!(bad.indicates_collision());
        assert_eq!(bad.num_failed(), 4);
    }

    #[test]
    fn sack_partial_is_neither() {
        let mixed = SelectiveAck {
            to: Tei(3),
            pb_ok: vec![true, false, true],
        };
        assert!(!mixed.is_success());
        assert!(!mixed.indicates_collision());
        assert_eq!(mixed.num_failed(), 1);
    }

    #[test]
    fn empty_sack_is_degenerate() {
        let empty = SelectiveAck {
            to: Tei(3),
            pb_ok: vec![],
        };
        assert!(!empty.is_success());
        assert!(!empty.indicates_collision());
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is the classic check value 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
