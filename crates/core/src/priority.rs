//! IEEE 1901 channel-access priority classes and priority-resolution
//! signalling.
//!
//! 1901 defines four priorities, CA0 (lowest) to CA3 (highest). Before the
//! backoff contention begins, stations signal their priority during two
//! *priority-resolution slots* (PRS0 and PRS1) using busy tones: a station
//! asserts a tone in PRS0 and/or PRS1 according to the two-bit encoding of
//! its priority. Only stations in the highest contending class run the
//! backoff process for that contention round; everyone else defers.
//!
//! The paper's testbed methodology leans on this: UDP data traffic goes out
//! at the default CA1 priority, while management messages (MMEs) use CA2 or
//! CA3, which is how the sniffer distinguishes them via the SoF LinkID
//! field.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A 1901 channel-access priority class.
///
/// Ordering follows contention precedence: `CA0 < CA1 < CA2 < CA3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Lowest priority, best-effort bulk traffic.
    CA0 = 0,
    /// Default priority for best-effort traffic (the paper's UDP tests).
    CA1 = 1,
    /// Delay-sensitive traffic; used by MMEs in the paper's testbed.
    CA2 = 2,
    /// Highest priority, delay-sensitive traffic (voice); also used by MMEs.
    CA3 = 3,
}

impl Priority {
    /// All four priorities, lowest first.
    pub const ALL: [Priority; 4] = [Priority::CA0, Priority::CA1, Priority::CA2, Priority::CA3];

    /// The default priority HomePlug AV devices assign to untagged data
    /// traffic, per the paper's measurements ("the default priority which is
    /// CA1").
    pub const DEFAULT_DATA: Priority = Priority::CA1;

    /// Construct from the two-bit LinkID / channel-access encoding.
    ///
    /// Returns `None` for values above 3.
    pub fn from_bits(bits: u8) -> Option<Priority> {
        match bits {
            0 => Some(Priority::CA0),
            1 => Some(Priority::CA1),
            2 => Some(Priority::CA2),
            3 => Some(Priority::CA3),
            _ => None,
        }
    }

    /// The two-bit encoding used in the SoF LinkID field.
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// Whether this class shares a CSMA parameter table with CA0/CA1
    /// (best-effort) or with CA2/CA3 (delay-sensitive) — the two columns of
    /// Table 1 in the paper.
    pub fn is_delay_sensitive(self) -> bool {
        matches!(self, Priority::CA2 | Priority::CA3)
    }

    /// Busy-tone pattern for the two priority-resolution slots.
    ///
    /// Per 1901, the priority is signalled MSB-first over (PRS0, PRS1):
    /// CA3 = (1,1), CA2 = (1,0), CA1 = (0,1), CA0 = (0,0).
    pub fn prs_tones(self) -> (bool, bool) {
        let b = self as u8;
        (b & 0b10 != 0, b & 0b01 != 0)
    }

    /// Decode the winning priority class from the OR of all asserted tones
    /// in the two priority-resolution slots.
    ///
    /// This models the resolution rule: a station that did not assert PRS0
    /// defers as soon as it hears a tone in PRS0; a station that asserted
    /// PRS0 (or heard none) but did not assert PRS1 defers on hearing a tone
    /// in PRS1. The surviving class is exactly the one whose two-bit pattern
    /// equals the OR-ed tone pattern.
    pub fn from_prs_tones(prs0: bool, prs1: bool) -> Priority {
        match (prs0, prs1) {
            (true, true) => Priority::CA3,
            (true, false) => Priority::CA2,
            (false, true) => Priority::CA1,
            (false, false) => Priority::CA0,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CA{}", *self as u8)
    }
}

/// Outcome of a priority-resolution phase over a set of contending classes.
///
/// Given the classes that have a frame ready, computes which class survives
/// and therefore runs the backoff process this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityResolution {
    /// Tone heard in PRS0 (OR over all contenders asserting it).
    pub prs0: bool,
    /// Tone heard in PRS1. Note the 1901 rule: a station that lost in PRS0
    /// does not assert PRS1, which this computation honours.
    pub prs1: bool,
    /// The class that wins the round.
    pub winner: Priority,
}

/// Resolve the contention among `contenders`, returning `None` when the set
/// is empty (idle network — no PRS tones at all).
///
/// Implements the two-slot elimination faithfully: PRS1 tones are only
/// asserted by stations that were not eliminated in PRS0.
pub fn resolve_priority(contenders: &[Priority]) -> Option<PriorityResolution> {
    if contenders.is_empty() {
        return None;
    }
    let prs0 = contenders.iter().any(|p| p.prs_tones().0);
    // Stations eliminated in PRS0 (they did not assert it but heard it) stay
    // silent in PRS1.
    let prs1 = contenders
        .iter()
        .filter(|p| !prs0 || p.prs_tones().0)
        .any(|p| p.prs_tones().1);
    let winner = Priority::from_prs_tones(prs0, prs1);
    Some(PriorityResolution { prs0, prs1, winner })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_precedence() {
        assert!(Priority::CA0 < Priority::CA1);
        assert!(Priority::CA1 < Priority::CA2);
        assert!(Priority::CA2 < Priority::CA3);
    }

    #[test]
    fn bits_round_trip() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_bits(p.to_bits()), Some(p));
        }
        assert_eq!(Priority::from_bits(4), None);
        assert_eq!(Priority::from_bits(255), None);
    }

    #[test]
    fn table_column_split() {
        assert!(!Priority::CA0.is_delay_sensitive());
        assert!(!Priority::CA1.is_delay_sensitive());
        assert!(Priority::CA2.is_delay_sensitive());
        assert!(Priority::CA3.is_delay_sensitive());
    }

    #[test]
    fn prs_tone_patterns() {
        assert_eq!(Priority::CA0.prs_tones(), (false, false));
        assert_eq!(Priority::CA1.prs_tones(), (false, true));
        assert_eq!(Priority::CA2.prs_tones(), (true, false));
        assert_eq!(Priority::CA3.prs_tones(), (true, true));
    }

    #[test]
    fn tones_decode_to_class() {
        for p in Priority::ALL {
            let (a, b) = p.prs_tones();
            assert_eq!(Priority::from_prs_tones(a, b), p);
        }
    }

    #[test]
    fn resolution_single_class() {
        for p in Priority::ALL {
            let r = resolve_priority(&[p, p, p]).unwrap();
            assert_eq!(r.winner, p);
        }
    }

    #[test]
    fn resolution_highest_wins() {
        let r = resolve_priority(&[Priority::CA1, Priority::CA3, Priority::CA0]).unwrap();
        assert_eq!(r.winner, Priority::CA3);
        assert!(r.prs0 && r.prs1);
    }

    #[test]
    fn resolution_ca2_beats_ca1_via_prs0() {
        // CA2 asserts PRS0; CA1 does not and is eliminated, so its PRS1 tone
        // must NOT be heard. Winner pattern is (1,0) = CA2, not (1,1) = CA3.
        let r = resolve_priority(&[Priority::CA2, Priority::CA1]).unwrap();
        assert_eq!(r.winner, Priority::CA2);
        assert!(r.prs0);
        assert!(!r.prs1, "eliminated CA1 must stay silent in PRS1");
    }

    #[test]
    fn resolution_ca1_vs_ca0() {
        let r = resolve_priority(&[Priority::CA0, Priority::CA1]).unwrap();
        assert_eq!(r.winner, Priority::CA1);
        assert!(!r.prs0 && r.prs1);
    }

    #[test]
    fn resolution_empty_is_none() {
        assert_eq!(resolve_priority(&[]), None);
    }

    #[test]
    fn display() {
        assert_eq!(Priority::CA2.to_string(), "CA2");
    }
}
