//! Error types shared across the workspace.

use core::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = core::result::Result<T, Error>;

/// All the ways configuration, parsing or a measurement harness can fail.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a
/// wildcard arm, so adding failure modes (as the fault-injection layer
/// did with [`Timeout`](Error::Timeout) and friends) is not a breaking
/// change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A CSMA/CA configuration was structurally invalid.
    InvalidConfig {
        /// Human-readable description of which constraint was violated.
        reason: String,
    },
    /// A buffer was too short to contain the structure being parsed.
    ///
    /// `needed` is the minimum number of bytes the parser required and
    /// `got` is what it was given.
    Truncated {
        /// What was being parsed (e.g. `"MME header"`).
        what: &'static str,
        /// Minimum length required.
        needed: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// A field held a value outside its legal range.
    FieldRange {
        /// Field name (e.g. `"MPDUCnt"`).
        field: &'static str,
        /// The offending value, widened to `u64` for reporting.
        value: u64,
        /// Largest legal value.
        max: u64,
    },
    /// An MMType was not recognised by the parser in use.
    UnknownMmtype(u16),
    /// A delimiter type byte did not correspond to a known delimiter.
    UnknownDelimiter(u8),
    /// A checksum over a frame or MME did not match.
    BadChecksum {
        /// Checksum carried in the buffer.
        expected: u32,
        /// Checksum recomputed over the contents.
        computed: u32,
    },
    /// A tool, experiment or harness failed at runtime (I/O, a testbed
    /// request, an invalid measurement) — the unified error the
    /// `experiments` binary and `plc-tools` report instead of panicking.
    Runtime {
        /// What failed, human-readable.
        context: String,
    },
    /// A management transaction (or another bounded wait) did not
    /// complete in time — the error a tool sees when a request or
    /// confirm leg is lost on the bus.
    Timeout {
        /// What timed out (e.g. `"ampstat read"`).
        what: String,
        /// The timeout that expired, µs (integral so the error stays
        /// `Eq`-comparable).
        after_us: u64,
    },
    /// A retrying client exhausted its attempt budget. `last` is the
    /// failure of the final attempt (also reported via
    /// [`std::error::Error::source`]).
    RetriesExhausted {
        /// Attempts made, including the first.
        attempts: u32,
        /// The final attempt's error.
        last: Box<Error>,
    },
    /// A monotone firmware counter moved backwards between consecutive
    /// reads with no fault plan to explain it — a device reset or wrap
    /// the caller was not prepared to stitch over.
    CounterDiscontinuity {
        /// Which counter (e.g. `"station 2 acked"`).
        counter: String,
        /// Value at the previous read.
        prev: u64,
        /// Value at the current read.
        got: u64,
    },
}

impl Error {
    /// Shorthand used by config validation.
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Shorthand for runtime failures in tools and harnesses.
    pub fn runtime(context: impl Into<String>) -> Self {
        Error::Runtime {
            context: context.into(),
        }
    }

    /// Shorthand for timeouts.
    pub fn timeout(what: impl Into<String>, after_us: f64) -> Self {
        Error::Timeout {
            what: what.into(),
            after_us: after_us.max(0.0) as u64,
        }
    }

    /// True for failures a retry can plausibly clear (lost or delayed
    /// transactions). Parse errors, unknown devices and config mistakes
    /// are permanent — retrying them only hides bugs.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Timeout { .. })
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::runtime(format!("I/O error: {e}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { reason } => write!(f, "invalid CSMA/CA configuration: {reason}"),
            Error::Truncated { what, needed, got } => {
                write!(
                    f,
                    "truncated {what}: need at least {needed} bytes, got {got}"
                )
            }
            Error::FieldRange { field, value, max } => {
                write!(f, "field {field} out of range: {value} > {max}")
            }
            Error::UnknownMmtype(t) => write!(f, "unknown MMType 0x{t:04X}"),
            Error::UnknownDelimiter(d) => write!(f, "unknown delimiter type 0x{d:02X}"),
            Error::BadChecksum { expected, computed } => {
                write!(
                    f,
                    "bad checksum: frame carries 0x{expected:08X}, computed 0x{computed:08X}"
                )
            }
            Error::Runtime { context } => write!(f, "runtime failure: {context}"),
            Error::Timeout { what, after_us } => {
                write!(f, "{what} timed out after {after_us} us")
            }
            Error::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            Error::CounterDiscontinuity { counter, prev, got } => {
                write!(
                    f,
                    "counter discontinuity: {counter} went backwards ({prev} -> {got})"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::Truncated {
            what: "MME header",
            needed: 19,
            got: 4,
        };
        let s = e.to_string();
        assert!(s.contains("MME header"));
        assert!(s.contains("19"));
        assert!(s.contains('4'));
    }

    #[test]
    fn display_unknown_mmtype_is_hex() {
        assert_eq!(
            Error::UnknownMmtype(0xA030).to_string(),
            "unknown MMType 0xA030"
        );
    }

    #[test]
    fn display_field_range() {
        let e = Error::FieldRange {
            field: "MPDUCnt",
            value: 9,
            max: 3,
        };
        assert!(e.to_string().contains("MPDUCnt"));
    }

    #[test]
    fn invalid_config_helper() {
        let e = Error::invalid_config("cw empty");
        assert_eq!(
            e,
            Error::InvalidConfig {
                reason: "cw empty".into()
            }
        );
    }

    #[test]
    fn errors_are_comparable_and_clonable() {
        let e = Error::UnknownDelimiter(0xFF);
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn timeout_and_retry_variants() {
        let t = Error::timeout("ampstat read", 1000.5);
        assert_eq!(
            t,
            Error::Timeout {
                what: "ampstat read".into(),
                after_us: 1000,
            }
        );
        assert!(t.is_retryable());
        assert!(!Error::UnknownMmtype(0xA030).is_retryable());
        let gave_up = Error::RetriesExhausted {
            attempts: 10,
            last: Box::new(t.clone()),
        };
        assert!(gave_up.to_string().contains("10 attempts"));
        assert!(gave_up.to_string().contains("ampstat read"));
        // source() exposes the final attempt's failure.
        let src = std::error::Error::source(&gave_up).expect("has source");
        assert_eq!(src.to_string(), t.to_string());
        assert!(std::error::Error::source(&t).is_none());
    }

    #[test]
    fn counter_discontinuity_display() {
        let e = Error::CounterDiscontinuity {
            counter: "station 2 acked".into(),
            prev: 900,
            got: 5,
        };
        let s = e.to_string();
        assert!(s.contains("station 2 acked"));
        assert!(s.contains("900"));
        assert!(s.contains("-> 5"));
    }

    #[test]
    fn runtime_helper_and_io_conversion() {
        let e = Error::runtime("bench snapshot write failed");
        assert!(e.to_string().contains("bench snapshot write failed"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Runtime { .. }));
        assert!(e.to_string().contains("gone"));
    }
}
