//! Error types shared across the workspace.

use core::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = core::result::Result<T, Error>;

/// All the ways configuration or parsing can fail in `plc-core`.
///
/// The simulator crates deliberately keep their own richer error types;
/// this enum covers the foundational layer only: invalid CSMA parameter
/// tables, malformed frames and malformed management messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A CSMA/CA configuration was structurally invalid.
    InvalidConfig {
        /// Human-readable description of which constraint was violated.
        reason: String,
    },
    /// A buffer was too short to contain the structure being parsed.
    ///
    /// `needed` is the minimum number of bytes the parser required and
    /// `got` is what it was given.
    Truncated {
        /// What was being parsed (e.g. `"MME header"`).
        what: &'static str,
        /// Minimum length required.
        needed: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// A field held a value outside its legal range.
    FieldRange {
        /// Field name (e.g. `"MPDUCnt"`).
        field: &'static str,
        /// The offending value, widened to `u64` for reporting.
        value: u64,
        /// Largest legal value.
        max: u64,
    },
    /// An MMType was not recognised by the parser in use.
    UnknownMmtype(u16),
    /// A delimiter type byte did not correspond to a known delimiter.
    UnknownDelimiter(u8),
    /// A checksum over a frame or MME did not match.
    BadChecksum {
        /// Checksum carried in the buffer.
        expected: u32,
        /// Checksum recomputed over the contents.
        computed: u32,
    },
    /// A tool, experiment or harness failed at runtime (I/O, a testbed
    /// request, an invalid measurement) — the unified error the
    /// `experiments` binary and `plc-tools` report instead of panicking.
    Runtime {
        /// What failed, human-readable.
        context: String,
    },
}

impl Error {
    /// Shorthand used by config validation.
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Shorthand for runtime failures in tools and harnesses.
    pub fn runtime(context: impl Into<String>) -> Self {
        Error::Runtime {
            context: context.into(),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::runtime(format!("I/O error: {e}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { reason } => write!(f, "invalid CSMA/CA configuration: {reason}"),
            Error::Truncated { what, needed, got } => {
                write!(
                    f,
                    "truncated {what}: need at least {needed} bytes, got {got}"
                )
            }
            Error::FieldRange { field, value, max } => {
                write!(f, "field {field} out of range: {value} > {max}")
            }
            Error::UnknownMmtype(t) => write!(f, "unknown MMType 0x{t:04X}"),
            Error::UnknownDelimiter(d) => write!(f, "unknown delimiter type 0x{d:02X}"),
            Error::BadChecksum { expected, computed } => {
                write!(
                    f,
                    "bad checksum: frame carries 0x{expected:08X}, computed 0x{computed:08X}"
                )
            }
            Error::Runtime { context } => write!(f, "runtime failure: {context}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::Truncated {
            what: "MME header",
            needed: 19,
            got: 4,
        };
        let s = e.to_string();
        assert!(s.contains("MME header"));
        assert!(s.contains("19"));
        assert!(s.contains('4'));
    }

    #[test]
    fn display_unknown_mmtype_is_hex() {
        assert_eq!(
            Error::UnknownMmtype(0xA030).to_string(),
            "unknown MMType 0xA030"
        );
    }

    #[test]
    fn display_field_range() {
        let e = Error::FieldRange {
            field: "MPDUCnt",
            value: 9,
            max: 3,
        };
        assert!(e.to_string().contains("MPDUCnt"));
    }

    #[test]
    fn invalid_config_helper() {
        let e = Error::invalid_config("cw empty");
        assert_eq!(
            e,
            Error::InvalidConfig {
                reason: "cw empty".into()
            }
        );
    }

    #[test]
    fn errors_are_comparable_and_clonable() {
        let e = Error::UnknownDelimiter(0xFF);
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn runtime_helper_and_io_conversion() {
        let e = Error::runtime("bench snapshot write failed");
        assert!(e.to_string().contains("bench snapshot write failed"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Runtime { .. }));
        assert!(e.to_string().contains("gone"));
    }
}
