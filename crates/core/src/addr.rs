//! Addressing for emulated HomePlug AV devices.
//!
//! Two identifier spaces appear in the paper's methodology:
//!
//! * Ethernet-style **MAC addresses** — what `ampstat` queries statistics by
//!   ("given the destination MAC address"), and what MMEs are addressed to.
//! * **Terminal Equipment Identifiers (TEIs)** — the 8-bit station
//!   identifiers carried in SoF delimiters, which the sniffer uses to build
//!   per-source transmission traces ("the SoF contains the source
//!   identification of each frame").

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

/// A 48-bit Ethernet-style MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A deterministic locally-administered address for emulated station
    /// `index`: `02:19:01:00:00:<index>` (with the index spilling into the
    /// higher bytes past 255). The `02` prefix marks it locally
    /// administered; `19:01` is a nod to the standard.
    pub fn station(index: u32) -> MacAddr {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0x19, 0x01, b[1], b[2], b[3]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// True if the locally-administered bit is set.
    pub fn is_local(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Error returned when parsing a textual MAC address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(());

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected colon-separated MAC address like 02:19:01:00:00:01"
        )
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, ParseMacError> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in out.iter_mut() {
            let p = parts.next().ok_or(ParseMacError(()))?;
            if p.len() != 2 {
                return Err(ParseMacError(()));
            }
            *slot = u8::from_str_radix(p, 16).map_err(|_| ParseMacError(()))?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError(()));
        }
        Ok(MacAddr(out))
    }
}

/// A Terminal Equipment Identifier: the 8-bit station id carried in SoF
/// delimiters. TEI 0 is unassociated; 255 is broadcast; 1–254 are stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tei(pub u8);

impl Tei {
    /// The unassociated TEI.
    pub const UNASSOCIATED: Tei = Tei(0);
    /// The broadcast TEI.
    pub const BROADCAST: Tei = Tei(255);

    /// TEI for emulated station `index` (0-based), i.e. `index + 1`.
    ///
    /// Panics if `index ≥ 254` — a single AVLN cannot hold more stations.
    pub fn station(index: u32) -> Tei {
        assert!(index < 254, "a 1901 AVLN holds at most 254 stations");
        Tei((index + 1) as u8)
    }

    /// The 0-based station index, if this is a station TEI.
    pub fn station_index(self) -> Option<u32> {
        match self.0 {
            0 | 255 => None,
            t => Some(t as u32 - 1),
        }
    }

    /// True for TEIs that denote an associated station.
    pub fn is_station(self) -> bool {
        self.0 != 0 && self.0 != 255
    }
}

impl fmt::Display for Tei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TEI#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_addresses_are_distinct_and_local() {
        let a = MacAddr::station(0);
        let b = MacAddr::station(1);
        assert_ne!(a, b);
        assert!(a.is_local());
        assert!(!a.is_broadcast());
        assert_eq!(a.to_string(), "02:19:01:00:00:00");
        assert_eq!(b.to_string(), "02:19:01:00:00:01");
    }

    #[test]
    fn station_address_high_index() {
        let a = MacAddr::station(0x01_02_03);
        assert_eq!(a.to_string(), "02:19:01:01:02:03");
    }

    #[test]
    fn broadcast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }

    #[test]
    fn parse_round_trip() {
        let a = MacAddr::station(42);
        let parsed: MacAddr = a.to_string().parse().unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("02:19:01".parse::<MacAddr>().is_err());
        assert!("02:19:01:00:00:zz".parse::<MacAddr>().is_err());
        assert!("02:19:01:00:00:01:02".parse::<MacAddr>().is_err());
        assert!("2:19:1:0:0:1".parse::<MacAddr>().is_err());
    }

    #[test]
    fn tei_mapping() {
        assert_eq!(Tei::station(0), Tei(1));
        assert_eq!(Tei::station(6), Tei(7));
        assert_eq!(Tei(7).station_index(), Some(6));
        assert_eq!(Tei::UNASSOCIATED.station_index(), None);
        assert_eq!(Tei::BROADCAST.station_index(), None);
        assert!(Tei(1).is_station());
        assert!(!Tei(0).is_station());
        assert!(!Tei(255).is_station());
    }

    #[test]
    #[should_panic(expected = "at most 254")]
    fn tei_overflow_panics() {
        Tei::station(254);
    }

    #[test]
    fn tei_display() {
        assert_eq!(Tei(3).to_string(), "TEI#3");
    }
}
