//! # plc-obs — lightweight observability for the PLC workspace
//!
//! The measurement-first counterpart to the paper's methodology, turned
//! inward: where §3.2 resets and reads `ampstat` counters on real
//! devices, this crate gives every layer of the workspace one shared
//! instrumentation vocabulary —
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, [`Histogram`]s and
//!   [`SpanTimer`]s behind cheap cloneable handles; deterministic sorted
//!   JSON snapshots ([`Registry::to_json`]);
//! * [`Observer`] — a periodic read-only hook the slotted engine and the
//!   sweep worker pool call at configurable intervals with plain-data
//!   snapshots ([`EngineObs`] stage occupancy / BPC distributions,
//!   [`SweepProgress`] with ETA);
//! * zero cost when disabled: an engine without observers pays one
//!   branch per step, and a disabled registry turns every handle into a
//!   no-op that never reads the clock.
//!
//! Observers and registries are strictly read-only with respect to the
//! simulation: they never touch RNG streams, so results — including
//! byte-level sweep JSON — are identical with or without them.
//!
//! Names are dotted and owned by the instrumented layer: `engine.*`
//! (steps, steps_skipped, soa_fallbacks), `sweep.*`, `meanfield.*`
//! (solves, stations), `multidomain.*` (cells, components, jammed_tx,
//! sensed_defers) and `exp.*` phase timers. Sharded work merges
//! per-shard registries in shard order ([`Registry::merge_from`]), so
//! counter totals are worker-count invariant.
//!
//! ```
//! use plc_obs::{Registry, Observer, shared, CollectingObserver};
//!
//! let registry = Registry::new();
//! let steps = registry.counter("engine.steps");
//! steps.add(3);
//! assert_eq!(registry.snapshot().counter("engine.steps"), Some(3));
//!
//! let observer = shared(CollectingObserver::default());
//! observer.lock().on_engine(&plc_obs::EngineObs {
//!     t_us: 35.84,
//!     step: 1,
//!     idle_slots: 1,
//!     successes: 0,
//!     collision_events: 0,
//!     stations: vec![],
//! });
//! ```
//!
//! This crate deliberately depends only on the vendored `serde` /
//! `parking_lot`, never on the simulator crates, so `plc-sim`,
//! `plc-bench` and `plc-testbed` can all instrument themselves through
//! it without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod observer;
pub mod registry;

pub use observer::{
    shared, CollectingObserver, EngineObs, JsonLinesObserver, Observer, ProgressPrinter,
    SharedObserver, StationObs, SweepProgress,
};
pub use registry::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, Registry,
    RegistrySnapshot, SpanGuard, SpanTimer, TimerSnapshot,
};
