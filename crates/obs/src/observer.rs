//! Periodic observation hooks for engines and sweeps.
//!
//! An [`Observer`] receives read-only, plain-data snapshots: the slotted
//! engine reports an [`EngineObs`] every configured number of steps
//! (per-station backoff counters → stage occupancy, BPC distribution),
//! and the sweep scheduler reports a [`SweepProgress`] from its collector
//! thread as cells complete (progress + ETA).
//!
//! Observers never touch the simulation's RNG streams and cannot feed
//! anything back, so attaching one is guaranteed not to perturb results:
//! sweep JSON stays byte-identical with or without observers, for any
//! worker count (pinned by an integration test in the facade crate).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::Arc;

/// One station's backoff counters and tallies at observation time.
///
/// Plain integers (no simulator types) so lower layers can depend on
/// this crate without cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationObs {
    /// Station index.
    pub station: usize,
    /// Backoff stage currently in effect (0-based).
    pub stage: usize,
    /// Contention window in effect.
    pub cw: u32,
    /// Current backoff counter.
    pub bc: u32,
    /// Current deferral counter (`None` when the protocol has none).
    pub dc: Option<u32>,
    /// Backoff procedure counter since the last success.
    pub bpc: u32,
    /// Successful transmissions so far.
    pub successes: u64,
    /// Collisions participated in so far.
    pub collisions: u64,
}

/// A periodic engine snapshot: global tallies plus one [`StationObs`]
/// per station.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineObs {
    /// Simulated time in µs.
    pub t_us: f64,
    /// Engine steps executed so far.
    pub step: u64,
    /// Idle slots so far.
    pub idle_slots: u64,
    /// Successful transmissions so far.
    pub successes: u64,
    /// Collision events so far.
    pub collision_events: u64,
    /// Per-station counters.
    pub stations: Vec<StationObs>,
}

impl EngineObs {
    /// How many stations currently sit in each backoff stage
    /// (index = stage; length = highest occupied stage + 1).
    pub fn stage_occupancy(&self) -> Vec<usize> {
        let mut occ = Vec::new();
        for s in &self.stations {
            if s.stage >= occ.len() {
                occ.resize(s.stage + 1, 0);
            }
            occ[s.stage] += 1;
        }
        occ
    }

    /// Distribution of the backoff procedure counter across stations
    /// (index = BPC value; length = highest observed BPC + 1).
    pub fn bpc_distribution(&self) -> Vec<usize> {
        let mut dist = Vec::new();
        for s in &self.stations {
            let b = s.bpc as usize;
            if b >= dist.len() {
                dist.resize(b + 1, 0);
            }
            dist[b] += 1;
        }
        dist
    }
}

/// Progress of a running sweep, reported from the collector thread.
///
/// `elapsed_secs`/`eta_secs` are wall-clock estimates and therefore not
/// reproducible between runs — they exist for humans watching a long
/// sweep, and by construction cannot influence the sweep's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepProgress {
    /// Work units finished (replication cells, or whole points under
    /// early stopping).
    pub completed: usize,
    /// Total work units in the sweep.
    pub total: usize,
    /// Wall-clock seconds since the sweep started.
    pub elapsed_secs: f64,
    /// Estimated wall-clock seconds remaining (0 when unknown).
    pub eta_secs: f64,
}

/// A passive receiver of periodic snapshots. All methods default to
/// no-ops so implementors override only what they watch.
pub trait Observer: Send {
    /// Called by the slotted engine every configured number of steps.
    fn on_engine(&mut self, obs: &EngineObs) {
        let _ = obs;
    }

    /// Called by the sweep scheduler as work units complete.
    fn on_sweep_progress(&mut self, progress: &SweepProgress) {
        let _ = progress;
    }
}

/// An observer shared between the caller and an engine or sweep.
pub type SharedObserver = Arc<Mutex<dyn Observer + Send>>;

/// Wrap an observer for attachment (`shared(MyObserver::default())`).
pub fn shared<O: Observer + 'static>(observer: O) -> SharedObserver {
    Arc::new(Mutex::new(observer))
}

/// Records every snapshot it receives; the simplest useful observer.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// Engine snapshots, in arrival order.
    pub engine: Vec<EngineObs>,
    /// Sweep progress reports, in arrival order.
    pub progress: Vec<SweepProgress>,
}

impl Observer for CollectingObserver {
    fn on_engine(&mut self, obs: &EngineObs) {
        self.engine.push(obs.clone());
    }

    fn on_sweep_progress(&mut self, progress: &SweepProgress) {
        self.progress.push(progress.clone());
    }
}

/// Streams every snapshot as one JSON line to a writer, composing with
/// the JSON-lines trace format of `plc_sim::export`.
pub struct JsonLinesObserver<W: Write> {
    writer: W,
    lines_written: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonLinesObserver<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesObserver {
            writer,
            lines_written: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines_written
    }

    /// The first I/O or serialization error, if any occurred.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the inner writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(self.writer)
    }

    fn write_line(&mut self, line: Result<String, serde_json::Error>) {
        if self.error.is_some() {
            return;
        }
        let result = line
            .map_err(std::io::Error::other)
            .and_then(|l| writeln!(self.writer, "{l}"));
        match result {
            Ok(()) => self.lines_written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write + Send> Observer for JsonLinesObserver<W> {
    fn on_engine(&mut self, obs: &EngineObs) {
        self.write_line(serde_json::to_string(obs));
    }

    fn on_sweep_progress(&mut self, progress: &SweepProgress) {
        self.write_line(serde_json::to_string(progress));
    }
}

/// Prints sweep progress lines (`sweep 3/12 25.0% elapsed 1.2s eta 3.6s`)
/// to standard error — what the `experiments` harness attaches to long
/// sweeps.
#[derive(Debug, Default)]
pub struct ProgressPrinter {
    last_printed: Option<usize>,
}

impl Observer for ProgressPrinter {
    fn on_sweep_progress(&mut self, p: &SweepProgress) {
        if self.last_printed == Some(p.completed) {
            return;
        }
        self.last_printed = Some(p.completed);
        let pct = if p.total > 0 {
            100.0 * p.completed as f64 / p.total as f64
        } else {
            100.0
        };
        eprintln!(
            "sweep {}/{} {:5.1}% elapsed {:.1}s eta {:.1}s",
            p.completed, p.total, pct, p.elapsed_secs, p.eta_secs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_with_stages(stages: &[usize], bpcs: &[u32]) -> EngineObs {
        EngineObs {
            t_us: 1.0,
            step: 1,
            idle_slots: 0,
            successes: 0,
            collision_events: 0,
            stations: stages
                .iter()
                .zip(bpcs)
                .enumerate()
                .map(|(i, (&stage, &bpc))| StationObs {
                    station: i,
                    stage,
                    cw: 8,
                    bc: 0,
                    dc: Some(0),
                    bpc,
                    successes: 0,
                    collisions: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn stage_occupancy_counts_per_stage() {
        let obs = obs_with_stages(&[0, 0, 2], &[0, 1, 1]);
        assert_eq!(obs.stage_occupancy(), vec![2, 0, 1]);
        assert_eq!(obs.bpc_distribution(), vec![1, 2]);
    }

    #[test]
    fn collecting_observer_stores_everything() {
        let mut c = CollectingObserver::default();
        c.on_engine(&obs_with_stages(&[0], &[0]));
        c.on_sweep_progress(&SweepProgress {
            completed: 1,
            total: 2,
            elapsed_secs: 0.5,
            eta_secs: 0.5,
        });
        assert_eq!(c.engine.len(), 1);
        assert_eq!(c.progress.len(), 1);
    }

    #[test]
    fn json_lines_observer_round_trips() {
        let mut o = JsonLinesObserver::new(Vec::<u8>::new());
        let obs = obs_with_stages(&[1, 3], &[2, 0]);
        o.on_engine(&obs);
        assert_eq!(o.lines_written(), 1);
        assert!(o.error().is_none());
        let bytes = o.into_inner().unwrap();
        let line = String::from_utf8(bytes).unwrap();
        let back: EngineObs = serde_json::from_str(line.trim()).expect("parse");
        assert_eq!(back, obs);
    }

    #[test]
    fn shared_wraps_into_a_usable_handle() {
        let handle = shared(CollectingObserver::default());
        handle.lock().on_engine(&obs_with_stages(&[0], &[0]));
    }
}
