//! The metric registry: named counters, gauges, histograms and span
//! timers behind cheap cloneable handles.
//!
//! A [`Registry`] is an `Arc` around shared state, so cloning one and
//! handing it to an engine, a worker pool and a reporting thread all
//! observe the same metrics. Handles ([`Counter`], [`Gauge`],
//! [`Histogram`], [`SpanTimer`]) are resolved once by name and then
//! update lock-free (counters/gauges/timers are atomics; histograms
//! take a short mutex).
//!
//! Disabling a registry ([`Registry::set_enabled`]) turns every handle
//! into a no-op — span timers stop reading the clock entirely — so
//! instrumented code paths cost one relaxed atomic load when
//! observability is off.

use parking_lot::Mutex;
use plc_core::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Histogram bucket count: bucket 0 holds values < 1, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, the last bucket saturates.
const HIST_BUCKETS: usize = 32;

#[derive(Default)]
struct HistData {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HIST_BUCKETS],
}

struct TimerData {
    count: AtomicU64,
    nanos: AtomicU64,
}

enum Metric {
    Counter(Arc<AtomicU64>),
    /// f64 stored as its bit pattern.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<HistData>>),
    Timer(Arc<TimerData>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Timer(_) => "timer",
        }
    }
}

struct RegistryInner {
    enabled: AtomicBool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A shared, named-metric registry. Clones share state.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("metrics", &self.inner.metrics.lock().len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: AtomicBool::new(true),
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// An empty registry with recording turned off (every handle is a
    /// no-op until [`set_enabled`](Registry::set_enabled)`(true)`).
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Whether handles currently record.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off for every handle of this registry.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    fn try_resolve<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> (Metric, T),
        reuse: impl FnOnce(&Metric) -> Option<T>,
    ) -> Result<T> {
        let mut metrics = self.inner.metrics.lock();
        if let Some(existing) = metrics.get(name) {
            return reuse(existing).ok_or_else(|| {
                Error::runtime(format!(
                    "metric {name:?} already registered as a {}",
                    existing.kind()
                ))
            });
        }
        let (metric, handle) = make();
        metrics.insert(name.to_string(), metric);
        Ok(handle)
    }

    /// Get or create the counter `name`, or fail with a typed error if
    /// `name` is already registered as a different metric kind. Library
    /// code instrumenting caller-supplied registries should prefer this
    /// over [`counter`](Registry::counter).
    pub fn try_counter(&self, name: &str) -> Result<Counter> {
        self.try_resolve(
            name,
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (
                    Metric::Counter(cell.clone()),
                    Counter {
                        cell,
                        owner: self.inner.clone(),
                    },
                )
            },
            |m| match m {
                Metric::Counter(cell) => Some(Counter {
                    cell: cell.clone(),
                    owner: self.inner.clone(),
                }),
                _ => None,
            },
        )
    }

    /// Get or create the gauge `name`, or fail with a typed error if
    /// `name` is already registered as a different metric kind.
    pub fn try_gauge(&self, name: &str) -> Result<Gauge> {
        self.try_resolve(
            name,
            || {
                let cell = Arc::new(AtomicU64::new(0f64.to_bits()));
                (
                    Metric::Gauge(cell.clone()),
                    Gauge {
                        cell,
                        owner: self.inner.clone(),
                    },
                )
            },
            |m| match m {
                Metric::Gauge(cell) => Some(Gauge {
                    cell: cell.clone(),
                    owner: self.inner.clone(),
                }),
                _ => None,
            },
        )
    }

    /// Get or create the histogram `name`, or fail with a typed error if
    /// `name` is already registered as a different metric kind.
    pub fn try_histogram(&self, name: &str) -> Result<Histogram> {
        self.try_resolve(
            name,
            || {
                let data = Arc::new(Mutex::new(HistData::default()));
                (
                    Metric::Histogram(data.clone()),
                    Histogram {
                        data,
                        owner: self.inner.clone(),
                    },
                )
            },
            |m| match m {
                Metric::Histogram(data) => Some(Histogram {
                    data: data.clone(),
                    owner: self.inner.clone(),
                }),
                _ => None,
            },
        )
    }

    /// Get or create the span timer `name`, or fail with a typed error if
    /// `name` is already registered as a different metric kind.
    pub fn try_timer(&self, name: &str) -> Result<SpanTimer> {
        self.try_resolve(
            name,
            || {
                let data = Arc::new(TimerData {
                    count: AtomicU64::new(0),
                    nanos: AtomicU64::new(0),
                });
                (
                    Metric::Timer(data.clone()),
                    SpanTimer {
                        data,
                        owner: self.inner.clone(),
                    },
                )
            },
            |m| match m {
                Metric::Timer(data) => Some(SpanTimer {
                    data: data.clone(),
                    owner: self.inner.clone(),
                }),
                _ => None,
            },
        )
    }

    /// Get or create the counter `name`. Convenience wrapper around
    /// [`try_counter`](Registry::try_counter) for application code that
    /// controls its own metric names.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.try_counter(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get or create the gauge `name`. Convenience wrapper around
    /// [`try_gauge`](Registry::try_gauge).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.try_gauge(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get or create the histogram `name`. Convenience wrapper around
    /// [`try_histogram`](Registry::try_histogram).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.try_histogram(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get or create the span timer `name`. Convenience wrapper around
    /// [`try_timer`](Registry::try_timer).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn timer(&self, name: &str) -> SpanTimer {
        self.try_timer(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fold every metric of `other` into this registry, creating
    /// metrics that don't exist here yet. This is how the batch runner
    /// combines per-shard registries into one result.
    ///
    /// Per-kind semantics:
    ///
    /// * **counters** and **timers** add — fully order-independent;
    /// * **histograms** add counts, buckets and sums and combine
    ///   min/max. Counts and buckets are order-independent; the `sum`
    ///   is a float accumulation, so multi-way merges are pinned to the
    ///   merge order (the batch runner merges in shard-index order);
    /// * **gauges** are last-value-wins by definition, so the *source*
    ///   value overwrites — merge order decides which shard's last
    ///   value survives.
    ///
    /// Fails with a typed error if a name is registered with different
    /// kinds on the two sides, or if `other` *is* this registry (a
    /// self-merge would double every counter).
    pub fn merge_from(&self, other: &Registry) -> Result<()> {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return Err(Error::runtime("cannot merge a registry into itself"));
        }
        let theirs = other.inner.metrics.lock();
        let mut ours = self.inner.metrics.lock();
        // Validate every name before touching anything, so a kind clash
        // can't leave a half-merged registry behind.
        for (name, theirs_m) in theirs.iter() {
            if let Some(ours_m) = ours.get(name) {
                if std::mem::discriminant(ours_m) != std::mem::discriminant(theirs_m) {
                    return Err(Error::runtime(format!(
                        "cannot merge metric {name:?}: {} here, {} in source",
                        ours_m.kind(),
                        theirs_m.kind()
                    )));
                }
            }
        }
        for (name, theirs_m) in theirs.iter() {
            match (ours.get(name), theirs_m) {
                (Some(Metric::Counter(a)), Metric::Counter(b)) => {
                    a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                (Some(Metric::Gauge(a)), Metric::Gauge(b)) => {
                    a.store(b.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                (Some(Metric::Histogram(a)), Metric::Histogram(b)) => {
                    let other_h = b.lock();
                    let mut h = a.lock();
                    if other_h.count > 0 {
                        if h.count == 0 {
                            h.min = other_h.min;
                            h.max = other_h.max;
                        } else {
                            h.min = h.min.min(other_h.min);
                            h.max = h.max.max(other_h.max);
                        }
                        h.count += other_h.count;
                        h.sum += other_h.sum;
                        for (dst, src) in h.buckets.iter_mut().zip(&other_h.buckets) {
                            *dst += src;
                        }
                    }
                }
                (Some(Metric::Timer(a)), Metric::Timer(b)) => {
                    a.count
                        .fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
                    a.nanos
                        .fetch_add(b.nanos.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                (Some(_), _) => unreachable!("kinds validated above"),
                (None, m) => {
                    // Deep-copy the source state into a fresh metric so
                    // the two registries never share cells.
                    let copy = match m {
                        Metric::Counter(b) => {
                            Metric::Counter(Arc::new(AtomicU64::new(b.load(Ordering::Relaxed))))
                        }
                        Metric::Gauge(b) => {
                            Metric::Gauge(Arc::new(AtomicU64::new(b.load(Ordering::Relaxed))))
                        }
                        Metric::Histogram(b) => {
                            let src = b.lock();
                            Metric::Histogram(Arc::new(Mutex::new(HistData {
                                count: src.count,
                                sum: src.sum,
                                min: src.min,
                                max: src.max,
                                buckets: src.buckets,
                            })))
                        }
                        Metric::Timer(b) => Metric::Timer(Arc::new(TimerData {
                            count: AtomicU64::new(b.count.load(Ordering::Relaxed)),
                            nanos: AtomicU64::new(b.nanos.load(Ordering::Relaxed)),
                        })),
                    };
                    ours.insert(name.clone(), copy);
                }
            }
        }
        Ok(())
    }

    /// A point-in-time snapshot of every metric, names sorted, suitable
    /// for deterministic JSON export.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.inner.metrics.lock();
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => snap.counters.push(CounterSnapshot {
                    name: name.clone(),
                    value: cell.load(Ordering::Relaxed),
                }),
                Metric::Gauge(cell) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: f64::from_bits(cell.load(Ordering::Relaxed)),
                }),
                Metric::Histogram(data) => {
                    let h = data.lock();
                    let last_used = h
                        .buckets
                        .iter()
                        .rposition(|&b| b > 0)
                        .map(|i| i + 1)
                        .unwrap_or(0);
                    snap.histograms.push(HistogramSnapshot {
                        name: name.clone(),
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0.0 } else { h.min },
                        max: if h.count == 0 { 0.0 } else { h.max },
                        buckets: h.buckets[..last_used].to_vec(),
                    });
                }
                Metric::Timer(data) => {
                    let count = data.count.load(Ordering::Relaxed);
                    let nanos = data.nanos.load(Ordering::Relaxed);
                    snap.timers.push(TimerSnapshot {
                        name: name.clone(),
                        count,
                        total_secs: nanos as f64 * 1e-9,
                    });
                }
            }
        }
        snap
    }

    /// Serialize [`snapshot`](Registry::snapshot) as one compact JSON
    /// document (names sorted → byte-deterministic for equal contents).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("registry snapshot serializes infallibly")
    }

    /// Write [`to_json`](Registry::to_json) to `path` **atomically**
    /// (temp file in the same directory + rename, via
    /// [`plc_core::fs::atomic_write`]): a crash mid-export leaves either
    /// the previous snapshot or the new one on disk, never a torn JSON
    /// document. This is how long-running jobs persist their metrics
    /// alongside each checkpoint flush.
    pub fn write_json_atomic(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut doc = self.to_json();
        doc.push('\n');
        plc_core::fs::atomic_write(path, doc.as_bytes())
    }
}

/// Monotone event counter handle.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    owner: Arc<RegistryInner>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.owner.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Last-value-wins instantaneous measurement handle.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    owner: Arc<RegistryInner>,
}

impl Gauge {
    /// Record the current value.
    #[inline]
    pub fn set(&self, value: f64) {
        if self.owner.enabled.load(Ordering::Relaxed) {
            self.cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Last recorded value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Value-distribution handle (log₂ buckets plus count/sum/min/max).
#[derive(Clone)]
pub struct Histogram {
    data: Arc<Mutex<HistData>>,
    owner: Arc<RegistryInner>,
}

impl Histogram {
    /// Record one observation. Non-finite values are ignored.
    pub fn record(&self, value: f64) {
        if !self.owner.enabled.load(Ordering::Relaxed) || !value.is_finite() {
            return;
        }
        let bucket = if value < 1.0 {
            0
        } else {
            (value.log2().floor() as usize + 1).min(HIST_BUCKETS - 1)
        };
        let mut h = self.data.lock();
        if h.count == 0 {
            h.min = value;
            h.max = value;
        } else {
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        }
        h.count += 1;
        h.sum += value;
        h.buckets[bucket] += 1;
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.data.lock().count
    }
}

/// Accumulating wall-clock timer for a named span.
///
/// [`start`](SpanTimer::start) returns a guard that records the elapsed
/// time when dropped; when the owning registry is disabled the guard
/// never reads the clock.
#[derive(Clone)]
pub struct SpanTimer {
    data: Arc<TimerData>,
    owner: Arc<RegistryInner>,
}

impl SpanTimer {
    /// Start a span; the returned guard records on drop. The guard owns
    /// a handle to the timer, so it outlives any borrow of the timer
    /// itself (instrumented code can hold it across `&mut self` calls).
    #[inline]
    pub fn start(&self) -> SpanGuard {
        let started = if self.owner.enabled.load(Ordering::Relaxed) {
            Some((self.data.clone(), Instant::now()))
        } else {
            None
        };
        SpanGuard { started }
    }

    /// Record an externally measured span.
    pub fn record(&self, duration: std::time::Duration) {
        if self.owner.enabled.load(Ordering::Relaxed) {
            self.data.count.fetch_add(1, Ordering::Relaxed);
            self.data
                .nanos
                .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Record `count` spans measured together: adds `count` spans and
    /// their combined wall time in one shot. Batched instrumentation for
    /// hot loops where a clock read per span would dominate the spans
    /// themselves; the aggregate (count, total nanos) is exactly what
    /// `count` individual [`record`](SpanTimer::record) calls would
    /// accumulate.
    pub fn record_many(&self, count: u64, total: std::time::Duration) {
        if count > 0 && self.owner.enabled.load(Ordering::Relaxed) {
            self.data.count.fetch_add(count, Ordering::Relaxed);
            self.data
                .nanos
                .fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Spans recorded so far.
    pub fn count(&self) -> u64 {
        self.data.count.load(Ordering::Relaxed)
    }

    /// Total recorded time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.data.nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

/// Drop guard produced by [`SpanTimer::start`].
pub struct SpanGuard {
    started: Option<(Arc<TimerData>, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((data, started)) = self.started.take() {
            data.count.fetch_add(1, Ordering::Relaxed);
            data.nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Last recorded value.
    pub value: f64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Log₂ bucket counts, trimmed after the last non-empty bucket:
    /// bucket 0 counts values < 1, bucket `i ≥ 1` counts `[2^(i−1), 2^i)`.
    pub buckets: Vec<u64>,
}

/// Snapshot of one span timer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimerSnapshot {
    /// Registered name.
    pub name: String,
    /// Spans recorded.
    pub count: u64,
    /// Total recorded seconds.
    pub total_secs: f64,
}

/// Every metric of a registry at one instant, names sorted per kind.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span timers, sorted by name.
    pub timers: Vec<TimerSnapshot>,
}

impl RegistrySnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The timer named `name`, if present.
    pub fn timer(&self, name: &str) -> Option<&TimerSnapshot> {
        self.timers.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("steps");
        let b = reg.counter("steps");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("steps"), Some(5));
    }

    #[test]
    fn clones_share_state() {
        let reg = Registry::new();
        let clone = reg.clone();
        reg.counter("x").add(3);
        assert_eq!(clone.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        let t = reg.timer("t");
        c.inc();
        g.set(2.5);
        h.record(10.0);
        {
            let _span = t.start();
        }
        t.record(std::time::Duration::from_millis(5));
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(t.count(), 0);
        // Re-enabling makes the same handles live again.
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let reg = Registry::new();
        let g = reg.gauge("load");
        g.set(1.0);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    fn histogram_tracks_bounds_and_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("sizes");
        for v in [0.5, 1.0, 3.0, 1000.0] {
            h.record(v);
        }
        h.record(f64::NAN); // ignored
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.min, 0.5);
        assert_eq!(hs.max, 1000.0);
        assert!((hs.sum - 1004.5).abs() < 1e-9);
        // 0.5 → bucket 0, 1.0 → bucket 1, 3.0 → bucket 2, 1000 → bucket 10.
        assert_eq!(hs.buckets[0], 1);
        assert_eq!(hs.buckets[1], 1);
        assert_eq!(hs.buckets[2], 1);
        assert_eq!(hs.buckets[10], 1);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn span_timer_accumulates() {
        let reg = Registry::new();
        let t = reg.timer("work");
        {
            let _g = t.start();
        }
        t.record(std::time::Duration::from_micros(100));
        assert_eq!(t.count(), 2);
        assert!(t.total_secs() >= 100e-6);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("name");
        let _ = reg.gauge("name");
    }

    #[test]
    fn try_getters_return_typed_errors() {
        let reg = Registry::new();
        let c = reg.try_counter("name").expect("fresh name");
        c.inc();
        // Same kind → shared handle, not an error.
        assert_eq!(reg.try_counter("name").expect("same kind").get(), 1);
        // Different kinds → typed error naming the existing kind.
        let err = match reg.try_gauge("name") {
            Ok(_) => panic!("kind mismatch must fail"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(msg.contains("already registered as a counter"), "{msg}");
        assert!(reg.try_histogram("name").is_err());
        assert!(reg.try_timer("name").is_err());
        // The failed lookups must not have clobbered the counter.
        assert_eq!(reg.snapshot().counter("name"), Some(1));
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let make = || {
            let reg = Registry::new();
            reg.counter("zeta").add(1);
            reg.counter("alpha").add(2);
            reg.gauge("mid").set(0.5);
            reg.to_json()
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
        assert!(a.find("alpha").unwrap() < a.find("zeta").unwrap());
        let back: RegistrySnapshot = serde_json::from_str(&a).expect("parse");
        assert_eq!(back.counter("alpha"), Some(2));
    }

    #[test]
    fn atomic_json_export_round_trips_and_overwrites() {
        let path = std::env::temp_dir().join(format!("plc_obs_export_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let reg = Registry::new();
        reg.counter("job.points_done").add(3);
        reg.write_json_atomic(&path).expect("export");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, format!("{}\n", reg.to_json()));
        // A second export replaces the file wholesale.
        reg.counter("job.points_done").add(1);
        reg.write_json_atomic(&path).expect("re-export");
        let text = std::fs::read_to_string(&path).expect("read back");
        let back: RegistrySnapshot = serde_json::from_str(text.trim()).expect("parse");
        assert_eq!(back.counter("job.points_done"), Some(4));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<SpanTimer>();
    }

    #[test]
    fn merge_folds_every_kind() {
        let a = Registry::new();
        a.counter("steps").add(10);
        a.gauge("load").set(1.0);
        a.histogram("sizes").record(3.0);
        a.timer("work").record(std::time::Duration::from_micros(50));
        let b = Registry::new();
        b.counter("steps").add(5);
        b.counter("only_b").add(2);
        b.gauge("load").set(2.5);
        b.histogram("sizes").record(100.0);
        b.timer("work").record(std::time::Duration::from_micros(25));
        a.merge_from(&b).expect("merge");
        let snap = a.snapshot();
        assert_eq!(snap.counter("steps"), Some(15));
        assert_eq!(snap.counter("only_b"), Some(2));
        // Gauges are last-value-wins: the source value survives.
        assert_eq!(snap.gauges[0].value, 2.5);
        let h = &snap.histograms[0];
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (3.0, 100.0));
        assert!((h.sum - 103.0).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
        let t = snap.timer("work").unwrap();
        assert_eq!(t.count, 2);
        assert!((t.total_secs - 75e-6).abs() < 1e-12);
        // Metrics copied into `a` must not share cells with `b`.
        b.counter("only_b").add(100);
        assert_eq!(a.snapshot().counter("only_b"), Some(2));
    }

    #[test]
    fn merge_rejects_kind_clash_without_partial_merge() {
        let a = Registry::new();
        a.counter("alpha").add(1);
        a.counter("x").add(1);
        let b = Registry::new();
        b.counter("alpha").add(1);
        b.gauge("x").set(1.0);
        let err = a.merge_from(&b).expect_err("kind clash");
        assert!(err.to_string().contains("cannot merge metric"), "{err}");
        // Validation happens before mutation: alpha must be untouched.
        assert_eq!(a.snapshot().counter("alpha"), Some(1));
    }

    #[test]
    fn merge_rejects_self() {
        let a = Registry::new();
        a.counter("n").add(1);
        assert!(a.merge_from(&a.clone()).is_err());
        assert_eq!(a.snapshot().counter("n"), Some(1));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = Registry::new();
        let c = reg.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
