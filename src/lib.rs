//! # plc — IEEE 1901 / HomePlug AV MAC analysis and simulation suite
//!
//! A faithful, open reproduction of the experimental framework and
//! simulator behind *"Analyzing and Boosting the Performance of Power-Line
//! Communication Networks"* (Vlachou, Herzen, Thiran): the IEEE 1901
//! CSMA/CA mechanism with its deferral counter, simulators at several
//! levels of fidelity, analytical fixed-point models, an emulated
//! HomePlug AV testbed with the paper's `ampstat`/`faifa` measurement
//! tools, and a benchmark harness regenerating every table and figure.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `plc-core` | priorities, CSMA parameter tables, timing, frames, MMEs |
//! | [`mac`] | `plc-mac` | 1901 backoff FSM (BC/DC/BPC), 802.11 DCF, retry policies |
//! | [`sim`] | `plc-sim` | reference simulator port, modular engine, traffic/bursting, traces |
//! | [`phy`] | `plc-phy` | synthetic channel, tone maps, bit loading, PB errors |
//! | [`analysis`] | `plc-analysis` | coupled round model, decoupled model, Bianchi, boosting |
//! | [`testbed`] | `plc-testbed` | emulated devices, MME bus, ampstat/faifa, §3.2 methodology |
//! | [`stats`] | `plc-stats` | summaries, confidence intervals, fairness, histograms |
//! | [`obs`] | `plc-obs` | counters/gauges/histograms/span-timers, engine & sweep observers |
//! | [`faults`] | `plc-faults` | deterministic fault plans: MME loss/delay, brownouts, wrap, noise, retry policies |
//! | [`jobs`] | `plc-jobs` | crash-tolerant sweep jobs: checkpoint journal, exact resume, watchdogs, quarantine |
//! | [`boost`] | `plc-boost` | closed-loop config boosting: successive halving over (CW, DC) schedules against a scenario portfolio, Pareto-front artifact |
//!
//! ## Quickstart
//!
//! ```
//! use plc::prelude::*;
//!
//! // Simulate 3 saturated IEEE 1901 stations for 5 s (paper defaults).
//! let report = Simulation::ieee1901(3).horizon_us(5.0e6).seed(7).run();
//!
//! // Compare with the analytical model.
//! let model = CoupledModel::default_ca1().solve(3);
//!
//! assert!((report.collision_probability - model.collision_probability).abs() < 0.03);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Compile and run the README's code blocks (Quickstart, Parallel sweeps)
// as doctests so the documented examples can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

pub use plc_analysis as analysis;
pub use plc_boost as boost;
pub use plc_core as core;
pub use plc_faults as faults;
pub use plc_jobs as jobs;
pub use plc_mac as mac;
pub use plc_obs as obs;
pub use plc_phy as phy;
pub use plc_sim as sim;
pub use plc_stats as stats;
pub use plc_testbed as testbed;

/// The most common imports in one place.
pub mod prelude {
    pub use plc_analysis::{
        gamma_tolerance, throughput_tolerance, BianchiModel, CanoMaloneModel, CoupledModel,
        MeanFieldModel, Model1901, RoundModel,
    };
    pub use plc_boost::{BoostConfig, BoostRun, Portfolio, SearchSpace};
    pub use plc_core::config::{CsmaConfig, StageParams, DC_DISABLED};
    pub use plc_core::priority::Priority;
    pub use plc_core::timing::MacTiming;
    pub use plc_core::units::Microseconds;
    pub use plc_jobs::{Job, JobConfig, JobStatus, ResultSink};
    pub use plc_mac::{AnyBackoff, Backoff1901, BackoffDcf, BackoffProcess, RetryPolicy};
    pub use plc_obs::{
        shared, CollectingObserver, EngineObs, Observer, Registry, SharedObserver, SweepProgress,
    };
    pub use plc_phy::{ChannelModel, PbErrorModel, PhyRate, ToneMap};
    pub use plc_sim::{
        Backend, BatchRunner, BurstPolicy, EarlyStop, MultiDomainReport, PaperSim, Quantity,
        RunSummary, Scenario, SimReport, Simulation, StepOutcome, SweepGrid, SweepResults,
        Topology, TraceEvent, TrafficModel,
    };
    pub use plc_testbed::{CollisionExperiment, PowerStrip, TestbedConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let cfg = CsmaConfig::ieee1901_ca01();
        assert_eq!(cfg.cw_min(), 8);
        let _ = Priority::CA1;
    }
}
