//! Hidden terminals on a shared wire: the topology API end to end.
//!
//! Two 2-station PLC networks share one cable. The distance between them
//! decides everything: close enough and they carrier-sense each other and
//! time-share the medium; far enough and the signal drops below the noise
//! floor and both get the full medium; in between lies the hidden band,
//! where a neighbor's transmission is too weak to sense but strong enough
//! to corrupt frames — the classic hidden-terminal problem, on a wire.
//!
//! Run with: `cargo run --release --example hidden_terminal`

use plc::prelude::*;
use plc_stats::table::{fmt_prob, Table};

fn main() {
    let horizon_us = 2.0e7; // 20 s of simulated time per gap
    let spacing = 2.0; // metres between stations of one network

    let mut table = Table::new(vec![
        "gap (m)",
        "regime",
        "S aggregate",
        "MPDUs ok",
        "jammed tx",
        "sensed defers",
    ]);

    for gap in [10.0, 80.0, 200.0] {
        // Two cells of two stations each, `gap` metres of cable apart.
        let topology = Topology::builder()
            .cell(&[(0.0, 0.0), (spacing, 0.0)])
            .cell(&[(gap, 0.0), (gap + spacing, 0.0)])
            .build()
            .expect("valid topology");

        // Can the nearest cross-network pair sense each other? Interfere?
        let regime = if topology.hears(1, 2) {
            "sensed (time-share)"
        } else if topology.interferes(1, 2) {
            "hidden (jamming)"
        } else {
            "isolated (reuse)"
        };

        let report = Simulation::scenario(&Scenario::ieee1901(topology))
            .horizon_us(horizon_us)
            .seed(7)
            .run_topology();

        table.row(vec![
            format!("{gap:.0}"),
            regime.to_string(),
            fmt_prob(report.report.norm_throughput),
            report.report.metrics.mpdus_ok.to_string(),
            report.jammed_tx.to_string(),
            report.sensed_defers.to_string(),
        ]);
    }

    println!(
        "Two 2-station IEEE 1901 networks sharing a wire, {:.0} s per row\n\n{}",
        horizon_us / 1e6,
        table.render()
    );
    println!(
        "At 10 m the networks hear each other and share the medium like one\n\
         contention domain. At 200 m the cable attenuates the neighbor below\n\
         the noise floor and each network gets the whole medium — aggregate\n\
         throughput roughly doubles. At 80 m the neighbor is inaudible to\n\
         carrier sense yet still corrupts overlapping frames: transmissions\n\
         jam, selective retransmission resends the same blocks, and goodput\n\
         collapses. CSMA/CA only protects what it can hear."
    );
}
