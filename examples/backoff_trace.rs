//! Figure 1: the time evolution of the 1901 backoff process with two
//! saturated stations.
//!
//! The paper's Figure 1 walks through CW/DC/BC of stations A and B across
//! three transmissions, showing (a) the deferral-counter jump — "Observe
//! the change in CWi when a station senses the medium busy and has
//! DC = 0" — and (b) the short-term unfairness: the winner restarts at
//! stage 0 with CW = 8 while the loser climbs to larger windows.
//!
//! This example reproduces that table from a live simulation: it steps the
//! modular engine with snapshot tracing enabled and prints one row per
//! contention event.
//!
//! Run with: `cargo run --example backoff_trace`

use parking_lot::Mutex;
use plc::prelude::*;
use plc_sim::trace::VecTraceSink;
use std::sync::Arc;

fn main() {
    // The Simulation builder is the single entry point: snapshots and the
    // trace sink are attached before `build()`, no engine mutation needed.
    let sink = Arc::new(Mutex::new(VecTraceSink::new()));
    let mut engine = Simulation::ieee1901(2)
        .seed(1901)
        .snapshots(true)
        .sink(sink.clone())
        .build();

    println!("IEEE 1901 backoff trace, 2 saturated stations (CA1 table)\n");
    println!(
        "{:>10}  {:<28}  {:^20}  {:^20}",
        "time", "event", "Station A (CW DC BC)", "Station B (CW DC BC)"
    );
    println!("{}", "-".repeat(86));

    let mut events_shown = 0;
    while events_shown < 28 {
        let t = engine.time();
        let outcome = engine.step();
        let (a, b) = (engine.snapshot(0), engine.snapshot(1));
        let label = match outcome {
            StepOutcome::Idle => "idle slot".to_string(),
            StepOutcome::Success { station, .. } => {
                format!("TRANSMISSION by {}", if station == 0 { "A" } else { "B" })
            }
            StepOutcome::Collision { .. } => "COLLISION (A+B)".to_string(),
        };
        let fmt = |s: plc_mac::process::BackoffSnapshot| {
            format!(
                "{:>3} {:>3} {:>3}",
                s.cw,
                s.dc.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
                s.bc
            )
        };
        println!(
            "{:>8.0}us  {:<28}  {:^20}  {:^20}",
            t.as_micros(),
            label,
            fmt(a),
            fmt(b)
        );
        events_shown += 1;
    }

    // Summarize what Figure 1's caption points out.
    let events = &sink.lock().events;
    let jumps = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Snapshot { snap, .. } if snap.stage > 0))
        .count();
    println!(
        "\n{jumps} snapshot rows show a station above stage 0 — losers climb stages\n\
         (often *without* transmitting, via DC = 0 jumps) while each winner drops\n\
         back to CW = 8. That asymmetry is the short-term unfairness the paper's\n\
         Figure 1 illustrates."
    );
}
