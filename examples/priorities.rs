//! Priority classes CA0–CA3 and the two-slot priority resolution.
//!
//! The 1901 standard "specifies that only the stations belonging to the
//! highest contending priority class run the backoff process", decided by
//! busy tones in two priority-resolution slots. The paper leans on this
//! for its methodology: UDP data goes at CA1 while MMEs use CA2/CA3,
//! which is how the sniffer separates them.
//!
//! This example demonstrates both faces of the mechanism with the
//! multi-class engine:
//!
//! 1. strict precedence — a saturated CA2 station starves saturated CA1
//!    stations completely;
//! 2. sharing under light high-priority load — a low-rate CA2 source
//!    (like the MME background) barely dents CA1 throughput, but its own
//!    frames see priority service.
//!
//! Run with: `cargo run --release --example priorities`

use plc::prelude::*;
use plc_sim::multiclass::{ClassStationSpec, MultiClassConfig, MultiClassEngine};
use plc_stats::table::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn engine(
    specs: Vec<ClassStationSpec<Backoff1901>>,
    horizon_us: f64,
    seed: u64,
) -> MultiClassEngine<Backoff1901> {
    let cfg = MultiClassConfig {
        horizon: Microseconds::new(horizon_us),
        ..Default::default()
    };
    MultiClassEngine::new(cfg, specs, seed)
}

fn spec(
    priority: Priority,
    traffic: TrafficModel,
    rng: &mut SmallRng,
) -> ClassStationSpec<Backoff1901> {
    ClassStationSpec::new(
        Backoff1901::new(CsmaConfig::ieee1901_for(priority), rng),
        priority,
        traffic,
    )
}

fn main() {
    let horizon = 2.0e7;

    // ---- Scenario 1: saturated CA2 vs saturated CA1 -------------------
    let mut rng = SmallRng::seed_from_u64(1);
    let mut e1 = engine(
        vec![
            spec(Priority::CA1, TrafficModel::Saturated, &mut rng),
            spec(Priority::CA1, TrafficModel::Saturated, &mut rng),
            spec(Priority::CA2, TrafficModel::Saturated, &mut rng),
        ],
        horizon,
        1,
    );
    e1.run();
    let by_class1 = e1.successes_by_class();

    // ---- Scenario 2: light CA2 over saturated CA1 ---------------------
    let mut rng = SmallRng::seed_from_u64(2);
    let mut e2 = engine(
        vec![
            spec(Priority::CA1, TrafficModel::Saturated, &mut rng),
            spec(Priority::CA1, TrafficModel::Saturated, &mut rng),
            spec(
                Priority::CA2,
                TrafficModel::Poisson {
                    rate_per_us: 1e-4,
                    queue_cap: 32,
                },
                &mut rng,
            ),
        ],
        horizon,
        2,
    );
    e2.run();
    let by_class2 = e2.successes_by_class();

    let mut table = Table::new(vec!["scenario", "CA1 successes", "CA2 successes"]);
    table.row(vec![
        "CA2 saturated".to_string(),
        by_class1[1].to_string(),
        by_class1[2].to_string(),
    ]);
    table.row(vec![
        "CA2 light (Poisson)".to_string(),
        by_class2[1].to_string(),
        by_class2[2].to_string(),
    ]);

    println!(
        "Priority resolution with 2×CA1 + 1×CA2 stations, {:.0} s\n",
        horizon / 1e6
    );
    println!("{}", table.render());
    println!(
        "Saturated CA2 wins every priority-resolution phase: CA1 gets zero.\n\
         Under light CA2 load the CA1 stations keep almost all the airtime —\n\
         which is why the paper's CA2 management messages only mildly perturb\n\
         the CA1 data measurements.\n"
    );

    // PRS accounting: the resolution slots are real airtime.
    let m = e2.metrics();
    let (idle, succ, coll, prs) = m.airtime_shares();
    println!(
        "airtime shares (scenario 2): idle {:.1}%, success {:.1}%, collision {:.1}%, PRS {:.1}%",
        idle * 100.0,
        succ * 100.0,
        coll * 100.0,
        prs * 100.0
    );
}
