//! Boosting: searching the (CW, DC) space for throughput-optimal tables.
//!
//! The report positions its simulator to "evaluate the performance of
//! different MAC configurations"; the CoNEXT paper's headline is that the
//! default 1901 table — tuned for small homes — leaves throughput on the
//! table at larger N. This example:
//!
//! 1. uses the analytical model to rank candidate tables per N (cheap:
//!    one fixed-point solve each),
//! 2. validates the winner against the default table *by simulation*,
//! 3. prints the boosted-vs-default comparison.
//!
//! Run with: `cargo run --release --example boosting`

use plc::prelude::*;
use plc_analysis::boost::{boost_search, BoostOptions};
use plc_stats::table::{fmt_prob, Table};

fn main() {
    let timing = MacTiming::paper_default();
    let mut table = Table::new(vec![
        "N",
        "default S (sim)",
        "boosted S (sim)",
        "gain",
        "boosted cw",
        "boosted dc",
    ]);

    for n in [2usize, 5, 10, 20] {
        let best = boost_search(n, &timing, &BoostOptions::default())
            .into_iter()
            .next()
            .expect("candidates");

        let horizon = 2.0e7;
        let default_sim = Simulation::ieee1901(n).horizon_us(horizon).seed(9).run();
        let boosted_sim = Simulation::ieee1901(n)
            .config(best.config.clone())
            .horizon_us(horizon)
            .seed(9)
            .run();

        let gain = boosted_sim.norm_throughput / default_sim.norm_throughput - 1.0;
        table.row(vec![
            n.to_string(),
            fmt_prob(default_sim.norm_throughput),
            fmt_prob(boosted_sim.norm_throughput),
            format!("{:+.1}%", 100.0 * gain),
            format!("{:?}", best.config.cw_vector()),
            format!(
                "{:?}",
                best.config
                    .dc_vector()
                    .iter()
                    .map(|&d| if d == DC_DISABLED {
                        "-".to_string()
                    } else {
                        d.to_string()
                    })
                    .collect::<Vec<_>>()
            ),
        ]);
    }

    println!("Boosting — model-guided search, simulation-validated (CA1 timing)\n");
    println!("{}", table.render());
    println!(
        "The default table (cw 8/16/32/64, dc 0/1/3/15) is near-optimal at N = 2\n\
         but increasingly beatable as N grows — larger or faster-growing windows\n\
         trade a little backoff idling for far fewer collisions."
    );
}
