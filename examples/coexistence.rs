//! Coexistence: what happens when only *some* stations adopt a boosted
//! parameter table (experiment E11, interactive form).
//!
//! The boosting experiment (E3) finds tables that beat the 1901 default at
//! large N — but upgrades roll out incrementally. This example mixes
//! default-table and boosted-table stations in one contention domain and
//! shows the free-riding problem: politeness is exploited.
//!
//! Run with: `cargo run --release --example coexistence`

use plc::prelude::*;
use plc_sim::engine::{EngineConfig, SlottedEngine, StationSpec};
use plc_stats::table::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 10;
    let boosted_cfg = CsmaConfig::from_vectors(&[32, 64, 128, 256], &[0, 1, 3, 15]).unwrap();
    let horizon = 2.0e7;

    let mut table = Table::new(vec![
        "upgraded stations",
        "total throughput",
        "wins/legacy station",
        "wins/upgraded station",
    ]);

    for upgraded in [0usize, 2, 5, 8, 10] {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut stations = Vec::new();
        for i in 0..n {
            let cfg = if i < n - upgraded {
                CsmaConfig::ieee1901_ca01()
            } else {
                boosted_cfg.clone()
            };
            stations.push(StationSpec::saturated(Backoff1901::new(cfg, &mut rng)));
        }
        let mut engine = SlottedEngine::new(
            EngineConfig::with_horizon(Microseconds::new(horizon)),
            stations,
            11,
        );
        let m = engine.run().clone();

        let mean = |r: std::ops::Range<usize>| {
            if r.is_empty() {
                return f64::NAN;
            }
            let len = r.len() as f64;
            m.per_station[r]
                .iter()
                .map(|s| s.successes as f64)
                .sum::<f64>()
                / len
        };
        let legacy = mean(0..n - upgraded);
        let boosted = mean(n - upgraded..n);
        let fmt = |x: f64| {
            if x.is_nan() {
                "-".to_string()
            } else {
                format!("{x:.0}")
            }
        };
        table.row(vec![
            format!("{upgraded}/{n}"),
            format!("{:.4}", m.norm_throughput(Microseconds::new(2050.0))),
            fmt(legacy),
            fmt(boosted),
        ]);
    }

    println!(
        "Incremental deployment of a boosted table (cw 32…256 vs default 8…64),\n\
         {n} saturated stations, {:.0} s simulated per row\n\n{}",
        horizon / 1e6,
        table.render()
    );
    println!(
        "Every upgrade raises total throughput, but mixed populations are\n\
         deeply unfair: the aggressive legacy table (CW₀ = 8) wins most\n\
         contentions against polite CW₀ = 32 stations. MAC parameter\n\
         boosting needs coordination — which is why Table 1 is mandatory\n\
         in the standard, and why the paper's boosting story is a network-\n\
         wide reconfiguration, not a per-device tweak."
    );
}
