//! Short-term fairness: IEEE 1901 vs 802.11 (the study of the paper's
//! prior work [4], enabled by the sniffer source traces of §3.3).
//!
//! 1901's deferral counter creates short-term unfairness: a winner
//! restarts at CW = 8 while losers are pushed to larger windows *without
//! even transmitting*, so wins come in streaks (Figure 1's caption).
//! 802.11 DCF with its freeze-on-busy backoff is much smoother at short
//! time scales.
//!
//! This example runs both protocols, extracts the success trace (the same
//! per-source trace a faifa capture yields), and prints windowed Jain
//! fairness plus the inter-transmission distribution of a tagged station.
//!
//! Run with: `cargo run --release --example fairness`

use parking_lot::Mutex;
use plc::prelude::*;
use plc_sim::trace::SuccessTrace;
use plc_stats::fairness::{intersuccess_counts, windowed_jain};
use plc_stats::hist::Histogram;
use plc_stats::table::Table;
use std::sync::Arc;

fn run_trace(sim: Simulation) -> Vec<usize> {
    let sink = Arc::new(Mutex::new(SuccessTrace::new()));
    sim.sink(sink.clone()).run();
    let trace = sink.lock().winners.clone();
    trace
}

fn main() {
    let n = 4;
    let horizon = 3.0e7;

    // Same stations, same wire, two protocols: build the contention domain
    // once as a topology and instantiate a scenario per protocol.
    let domain = Topology::fully_connected(n);
    let trace_1901 = run_trace(
        Simulation::scenario(&Scenario::ieee1901(domain.clone()))
            .horizon_us(horizon)
            .seed(4),
    );
    let trace_dcf = run_trace(
        Simulation::scenario(&Scenario::dcf(domain))
            .horizon_us(horizon)
            .seed(4),
    );

    println!("Short-term fairness, N = {n} saturated stations\n");
    let mut table = Table::new(vec!["window", "Jain (1901)", "Jain (802.11)"]);
    for window in [4usize, 8, 16, 32, 64, 256] {
        table.row(vec![
            window.to_string(),
            format!("{:.4}", windowed_jain(&trace_1901, n, window)),
            format!("{:.4}", windowed_jain(&trace_dcf, n, window)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Both converge to ~1 at long windows (long-term fair), but 1901 sits\n\
         below 802.11 at short windows — the deferral counter's streakiness.\n"
    );

    // Inter-transmission distribution of station 0 (bursts between wins).
    for (label, trace) in [("IEEE 1901", &trace_1901), ("802.11 DCF", &trace_dcf)] {
        let gaps = intersuccess_counts(trace, 0);
        let mut h = Histogram::new();
        for &g in &gaps {
            h.record(g as usize);
        }
        println!(
            "{label}: tagged station wins {} times; other-station successes between\n\
             consecutive wins: mean {:.2}, median {}, p95 {}, max {}",
            gaps.len() + 1,
            h.mean(),
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.95).unwrap_or(0),
            h.max_value().unwrap_or(0),
        );
        println!(
            "  immediate repeat wins (gap = 0): {:.1}%  — streaks",
            100.0 * h.frequency(0)
        );
    }
}
