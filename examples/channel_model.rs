//! The synthetic PHY: from channel to tone map to MAC timing to goodput.
//!
//! §4.1 of the report explains why the paper's simulator excludes the PHY
//! (unpublished bit loading, no validated channel model) — and exactly
//! which mechanisms a fuller model would add. This example walks the
//! synthetic substitute end to end:
//!
//! 1. three channels (power strip / in-room / cross-home) → per-carrier
//!    SNR → tone maps → PHY rates;
//! 2. the mains-cycle variation of the channel (PLC links breathe at
//!    2× the mains frequency);
//! 3. channel-derived MAC timing feeding the simulator;
//! 4. per-PB channel errors with selective retransmission, and their
//!    goodput cost vs the closed form.
//!
//! Run with: `cargo run --release --example channel_model`

use plc::prelude::*;
use plc_phy::channel::ChannelModel;
use plc_phy::error::{expected_rounds_for, PbErrorModel};
use plc_phy::rate::PhyRate;
use plc_stats::table::Table;

fn main() {
    // ---- 1. Channels → rates ----------------------------------------
    let channels = [
        ("power strip (paper's setup)", ChannelModel::power_strip()),
        ("in-room link", ChannelModel::short_link()),
        ("cross-home link", ChannelModel::long_link()),
    ];
    let payload = 36 * 1024; // one large aggregated PLC frame

    let mut t = Table::new(vec![
        "channel",
        "mean SNR (dB)",
        "bits/symbol",
        "PHY rate (Mb/s)",
        "frame airtime (µs)",
    ]);
    for (name, ch) in &channels {
        let tm = ch.tone_map(0.0);
        let rate = PhyRate::from_tone_map(&tm);
        let airtime = rate.airtime(payload);
        t.row(vec![
            name.to_string(),
            format!("{:.1}", ch.mean_snr_db()),
            tm.bits_per_symbol().to_string(),
            format!("{:.1}", rate.mbps()),
            airtime
                .map(|a| format!("{:.0}", a.as_micros()))
                .unwrap_or_else(|| "∞".into()),
        ]);
    }
    println!(
        "Synthetic PLC channels → bit loading → rate\n\n{}",
        t.render()
    );

    // ---- 2. Mains-cycle breathing ------------------------------------
    let ch = ChannelModel::long_link();
    print!("cross-home bits/symbol across one 50 Hz mains cycle: ");
    for k in 0..8 {
        let t_us = k as f64 * 2_500.0; // 20 ms cycle in 2.5 ms steps
        print!("{} ", ch.tone_map(t_us).bits_per_symbol());
    }
    println!("\n(the channel 'breathes' twice per mains cycle)\n");

    // ---- 3. Channel-derived MAC timing into the simulator -------------
    let mut t = Table::new(vec!["channel", "collision p", "absolute throughput (Mb/s)"]);
    for (name, ch) in &channels {
        let rate = PhyRate::from_tone_map(&ch.tone_map(0.0));
        let timing = rate.mac_timing(payload).expect("live channel");
        let r = Simulation::ieee1901(3)
            .timing(timing)
            .horizon_us(2.0e7)
            .seed(5)
            .run();
        let mbps = r.norm_throughput * (payload as f64 * 8.0) / timing.frame_length.as_micros();
        t.row(vec![
            name.to_string(),
            format!("{:.4}", r.collision_probability),
            format!("{:.1}", mbps),
        ]);
    }
    println!("3 saturated stations on each channel:\n\n{}", t.render());
    println!(
        "Contention (collision probability) is rate-independent; the channel\n\
         sets how much each won transmission carries.\n"
    );

    // ---- 4. Channel errors & selective retransmission -----------------
    let mut t = Table::new(vec![
        "SNR margin (dB)",
        "PB error prob",
        "goodput (sim)",
        "1/E[rounds] × clean",
    ]);
    let clean = Simulation::ieee1901(2)
        .horizon_us(2.0e7)
        .seed(6)
        .run()
        .metrics
        .goodput();
    for margin in [3.0, 1.5, 0.75] {
        let p = PbErrorModel::with_margin(margin).pb_error_prob();
        let r = Simulation::ieee1901(2)
            .pb_error_prob(p)
            .horizon_us(2.0e7)
            .seed(6)
            .run();
        t.row(vec![
            format!("{margin:.2}"),
            format!("{p:.4}"),
            format!("{:.4}", r.metrics.goodput()),
            format!("{:.4}", clean / expected_rounds_for(p, 4)),
        ]);
    }
    println!(
        "Channel errors (§4.1's unmodelled mechanism, exercised):\n\n{}",
        t.render()
    );
    println!(
        "Errored PBs are flagged in the selective ACK and retransmitted alone;\n\
         each retransmission round costs one contention win, so goodput falls\n\
         as 1/E[max of 4 geometrics] — the last column's closed form."
    );
}
