//! Figure 2: collision probability vs number of stations — simulation,
//! analysis, and emulated HomePlug AV measurements side by side.
//!
//! The paper's Figure 2 overlays three series for N = 1…7 with the default
//! CA1 configuration: the MAC simulator, the analytical model, and the
//! average of 10 HomePlug AV testbed measurements, and observes "an
//! excellent fit between measurements, simulation, and analysis".
//!
//! This example regenerates all three series (shorter tests than the
//! paper's 240 s so it completes in a few seconds; run the bench harness
//! for full-length runs) plus the paper's published values for reference.
//!
//! Run with: `cargo run --release --example collision_vs_n`

use plc::prelude::*;
use plc_sim::sweep;
use plc_stats::table::{fmt_prob, Table};

/// Figure 2 values as published (read from Table 2: ΣCᵢ/ΣAᵢ).
const PAPER: [f64; 7] = [0.0002, 0.0741, 0.1339, 0.1779, 0.2176, 0.2443, 0.2669];

fn main() {
    let mut table = Table::new(vec![
        "N",
        "paper (meas.)",
        "simulation",
        "analysis",
        "emulated testbed",
    ]);

    let model = CoupledModel::default_ca1();
    // The seven points are independent; run them on the deterministic
    // sweep pool (same results for any worker count), then print in order.
    let rows = sweep::parallel_map(sweep::default_workers(), (1..=7usize).collect(), |_, n| {
        // Simulation: the reference simulator, 50 s.
        let sim = PaperSim::with_n_and_time(n, 5.0e7)
            .run(n as u64)
            .expect("valid inputs")
            .collision_pr;

        // Analysis: coupled fixed point (exact value, no randomness).
        let ana = model.solve(n).collision_probability;

        // Emulated measurements: 3 × 20 s tests via the ampstat workflow.
        let outcomes = CollisionExperiment {
            duration: Microseconds::from_secs(20.0),
            ..CollisionExperiment::paper(n, 100 + n as u64)
        }
        .run_repeated(3)
        .expect("testbed runs");
        let meas = plc_testbed::experiment::mean_collision_probability(&outcomes);

        vec![
            n.to_string(),
            fmt_prob(PAPER[n - 1]),
            fmt_prob(sim),
            fmt_prob(ana),
            fmt_prob(meas),
        ]
    });
    for row in rows {
        table.row(row);
    }

    println!("Figure 2 — collision probability vs N (CA1 defaults)\n");
    println!("{}", table.render());
    println!(
        "All three reproduced series should track the paper's curve: ~0.07 at N=2\n\
         rising to ~0.27 at N=7. (The N=1 paper value of 0.0002 reflects testbed\n\
         noise; a standard-conformant single station cannot collide with CA1 data.)"
    );
}
