//! Table 2 and the §3.3 sniffer methodology on the emulated testbed.
//!
//! Reproduces the paper's measurement workflow end to end:
//!
//! 1. plug N stations + destination D into the power strip;
//! 2. `ampstat` reset of all transmit counters (vendor MME 0xA030);
//! 3. run saturated CA1 UDP traffic (2-MPDU bursts, as measured on the
//!    INT6300 devices) with light CA2 management traffic;
//! 4. `ampstat` query → Table 2's `ΣCᵢ`, `ΣAᵢ` columns;
//! 5. `faifa` sniffer capture at D → burst-size frequencies (§3.1) and
//!    MME overhead over bursts (§3.3).
//!
//! Run with: `cargo run --release --example testbed_measurement`

use plc::prelude::*;
use plc_core::mme::Direction;
use plc_stats::table::{fmt_prob, fmt_sci, Table};
use plc_testbed::tools::{AmpStat, Faifa};
use plc_testbed::{group_bursts, mme_overhead};

fn main() {
    // ---- Table 2: ΣCi, ΣAi for N = 1..7 ------------------------------
    let duration_s = 20.0; // paper: 240 s; shortened for example speed
    let mut t2 = Table::new(vec!["N", "ΣCi", "ΣAi", "ΣCi/ΣAi"]);
    for n in 1..=7usize {
        let out = CollisionExperiment {
            duration: Microseconds::from_secs(duration_s),
            ..CollisionExperiment::paper(n, 1_000 + n as u64)
        }
        .run()
        .expect("testbed run");
        t2.row(vec![
            n.to_string(),
            fmt_sci(out.sum_collided as f64),
            fmt_sci(out.sum_acked as f64),
            fmt_prob(out.collision_probability),
        ]);
    }
    println!("Table 2 — measured statistics, one {duration_s:.0} s test per N\n");
    println!("{}", t2.render());

    // ---- §3.1 + §3.3: sniffer capture at the destination -------------
    let mut strip = PowerStrip::new(TestbedConfig {
        n_stations: 3,
        duration: Microseconds::from_secs(10.0),
        seed: 7,
        ..Default::default()
    });
    let faifa = Faifa::new(strip.bus());
    let ampstat = AmpStat::new(strip.bus());
    let d = strip.destination_mac();
    faifa.set_sniffer(d, true).expect("sniffer on");

    for i in 0..3 {
        ampstat
            .reset(strip.station_mac(i), d, Priority::CA1, Direction::Tx)
            .expect("reset");
    }
    strip.run_test();

    let captures = faifa.collect(d).expect("captures");
    println!(
        "sniffer captured {} SoF delimiters at D; first five:",
        captures.len()
    );
    for ind in captures.iter().take(5) {
        println!("  {}", Faifa::format_sof(ind));
    }

    let bursts = group_bursts(&captures).expect("finite capture timestamps");
    let hist = plc_testbed::capture::burst_size_histogram(&bursts);
    println!("\nburst-size frequencies (§3.1; devices measured bursts of 2):");
    for (size, count) in hist.iter() {
        println!(
            "  {size} MPDU{}: {:>6} bursts ({:.1}%)",
            if size == 1 { " " } else { "s" },
            count,
            100.0 * hist.frequency(size)
        );
    }

    let overhead = mme_overhead(&bursts);
    println!(
        "\nMME overhead (§3.3): {:.4} management bursts per data burst",
        overhead
    );
}
