//! Quickstart: the paper's example simulator invocation, three ways.
//!
//! The technical report's Table 3 defines the simulator inputs and gives
//! the example call
//! `sim_1901(2, 5e8, 2920.64, 2542.64, 2050, [8 16 32 64], [0 1 3 15])`.
//! This example runs that scenario (with a shorter horizon so it finishes
//! in about a second) through:
//!
//! 1. the line-faithful port of the paper's MATLAB reference simulator,
//! 2. the modular slotted engine behind the high-level `Simulation` API,
//! 3. the coupled analytical model,
//!
//! and prints the collision probability and normalized throughput from
//! each — they should agree closely.
//!
//! Run with: `cargo run --release --example quickstart`

use plc::prelude::*;
use plc_stats::table::{fmt_prob, Table};

fn main() {
    let n = 2;
    let horizon_us = 5.0e7; // 50 s of simulated time (the paper uses 500 s)

    // 1. The reference simulator, exactly as published (Table 3 inputs).
    let reference = PaperSim {
        n,
        sim_time: horizon_us,
        tc: 2920.64,
        ts: 2542.64,
        frame_length: 2050.0,
        cw: vec![8, 16, 32, 64],
        dc: vec![0, 1, 3, 15],
    }
    .run(42)
    .expect("valid inputs");

    // 2. The modular engine via the scenario front door. A fully-connected
    //    topology is the classic single contention domain — this is exactly
    //    what the `Simulation::ieee1901(n)` sugar expands to.
    let scenario = Scenario::ieee1901(Topology::fully_connected(n));
    let engine = Simulation::scenario(&scenario)
        .horizon_us(horizon_us)
        .seed(42)
        .run();

    // 3. The analytical model (no simulation at all).
    let model = CoupledModel::default_ca1();
    let fp = model.solve(n);
    let timing = MacTiming::paper_default();
    let s_model = model.throughput(n, &timing);

    let mut table = Table::new(vec!["method", "collision prob.", "norm. throughput"]);
    table.row(vec![
        "reference simulator (paper port)".to_string(),
        fmt_prob(reference.collision_pr),
        fmt_prob(reference.norm_throughput),
    ]);
    table.row(vec![
        "modular engine".to_string(),
        fmt_prob(engine.collision_probability),
        fmt_prob(engine.norm_throughput),
    ]);
    table.row(vec![
        "coupled analytical model".to_string(),
        fmt_prob(fp.collision_probability),
        fmt_prob(s_model),
    ]);

    println!("IEEE 1901 CSMA/CA, N = {n} saturated stations, CA1 defaults\n");
    println!("{}", table.render());
    println!(
        "reference counters: {} successes, {} collided transmissions over {:.0} s",
        reference.succ_transmissions,
        reference.collisions,
        reference.elapsed / 1e6
    );
    println!(
        "paper's Figure 2 reads ≈ 0.074 collision probability at N = 2 — all three\n\
         methods above should sit within a couple of points of that."
    );
}
